"""``python -m repro bench-serve --async``: the pipelined load generator.

Where the threaded loadgen is closed-loop (K threads, one in-flight
request each), this one is a saturation bench: C connections to an
:class:`~repro.aio.server.AsyncMapServer`, each keeping up to P requests
pipelined over wire protocol v2. C is bounded by file descriptors, not
threads, which is the point -- one generator process comfortably drives
an order of magnitude more connections than the threaded bench can.

With ``mutate_frac > 0`` against a durable server the run doubles as the
group-commit measurement: concurrent inserts from many connections land
in shared WAL fsync batches, and the report's ``group_commit`` section
shows fsyncs-per-mutation (1.0 is the threaded server's floor; smaller
is the batching win).
"""

from __future__ import annotations

import asyncio
import random
import time
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Tuple

from repro.aio.client import AsyncMapClient
from repro.aio.server import AsyncMapServer
from repro.metric_names import DISK_ACCESSES
from repro.service.loadgen import _uniform_workload, _workload, percentile
from repro.service.snapshot import open_index


@dataclass
class AsyncBenchReport:
    """Everything one ``bench-serve --async`` run measured."""

    structure: str
    source: str
    segments: int
    connections: int
    pipeline: int
    requests: int
    errors: int
    overloaded: int
    elapsed_seconds: float
    throughput_qps: float
    latency_ms: Dict[str, float]
    totals: Dict[str, int]
    counters_consistent: bool
    server: Dict[str, Any] = field(default_factory=dict)
    group_commit: Dict[str, Any] = field(default_factory=dict)


def _mutating_workload(
    index, n: int, rng: random.Random, mutate_frac: float
) -> List[Dict[str, Any]]:
    """The read mix with a ``mutate_frac`` share of small inserts."""
    reads = _workload(index, n, rng)
    table = index.ctx.segments
    count = len(table)
    out: List[Dict[str, Any]] = []
    for request in reads:
        if rng.random() < mutate_frac:
            seg = table.peek(rng.randrange(count))
            out.append(
                {
                    "op": "insert",
                    "x1": seg.x1,
                    "y1": seg.y1,
                    "x2": seg.x1 + rng.uniform(0.1, 2.0),
                    "y2": seg.y1 + rng.uniform(0.1, 2.0),
                }
            )
        else:
            out.append(request)
    return out


async def _drive(
    address: Tuple[str, int],
    shares: List[List[Dict[str, Any]]],
    pipeline: int,
) -> Tuple[List[float], int, int]:
    """One connection per share, up to ``pipeline`` requests in flight
    on each. Returns ``(latencies, errors, overloaded)``."""
    loop = asyncio.get_running_loop()

    async def one_conn(share: List[Dict[str, Any]]):
        latencies: List[float] = []
        errors = 0
        overloaded = 0
        try:
            client = await AsyncMapClient.connect(address, timeout=30.0)
        except (ConnectionError, OSError, asyncio.TimeoutError):
            return latencies, len(share), 0  # never connected: all failed
        sem = asyncio.Semaphore(pipeline)

        async def fire(request: Dict[str, Any]) -> None:
            nonlocal errors, overloaded
            async with sem:
                start = loop.time()
                try:
                    response = await client.request(request)
                except (ConnectionError, OSError):
                    errors += 1
                    return
                latencies.append(loop.time() - start)
                if not response.get("ok"):
                    code = (response.get("error") or {}).get("code")
                    if code == "server_overloaded":
                        overloaded += 1
                    else:
                        errors += 1

        await asyncio.gather(*(fire(request) for request in share))
        await client.close()
        return latencies, errors, overloaded

    results = await asyncio.gather(*(one_conn(share) for share in shares))
    latencies: List[float] = []
    errors = 0
    overloaded = 0
    for lat, err, over in results:
        latencies.extend(lat)
        errors += err
        overloaded += over
    return latencies, errors, overloaded


def run_async_load(
    address: Tuple[str, int],
    workload: List[Dict[str, Any]],
    connections: int,
    pipeline: int,
) -> Tuple[List[float], int, int, float]:
    """Drive ``address`` with the workload split over ``connections``
    pipelined v2 connections. Returns sorted latencies, error and
    overloaded counts, and wall-clock elapsed seconds."""
    shares = [workload[i::connections] for i in range(connections)]
    shares = [share for share in shares if share]
    start = time.perf_counter()
    latencies, errors, overloaded = asyncio.run(
        _drive(address, shares, pipeline)
    )
    elapsed = time.perf_counter() - start
    latencies.sort()
    return latencies, errors, overloaded, elapsed


def bench_serve_async(
    county: str = "charles",
    scale: float = 0.02,
    structure: str = "R*",
    connections: int = 16,
    pipeline: int = 8,
    requests: int = 400,
    snapshot: Optional[str] = None,
    cache_capacity: int = 256,
    seed: int = 0,
    connect: Optional[List[Tuple[str, int]]] = None,
    world_size: Optional[float] = None,
    wal_dir: Optional[str] = None,
    mutate_frac: float = 0.0,
    executor_workers: int = 4,
) -> AsyncBenchReport:
    """The async twin of :func:`repro.service.loadgen.bench_serve`.

    Builds (or reopens) one index, starts an :class:`AsyncMapServer`
    sized so admission control never rejects the configured load (the
    saturation being measured is executor queueing, which the latency
    percentiles capture), and drives it. ``wal_dir`` makes the server
    durable -- pair it with ``mutate_frac`` to measure group commit.
    A non-empty ``connect`` drives a running v2-speaking server instead.
    """
    if connections < 1:
        raise ValueError(f"connections must be >= 1, got {connections}")
    if pipeline < 1:
        raise ValueError(f"pipeline must be >= 1, got {pipeline}")
    if connect:
        return _connect_bench_async(
            connect, connections, pipeline, requests, seed, world_size
        )

    store = None
    if snapshot is not None:
        index = open_index(snapshot)
        source = f"snapshot:{snapshot}"
    else:
        from repro.data import generate_county
        from repro.harness.experiment import build_structure

        built = build_structure(structure, generate_county(county, scale=scale))
        index = built.index
        source = f"built:{county}@{scale}"
    if wal_dir is not None:
        from repro.wal.store import DurableStore

        store = DurableStore.create(wal_dir, index, group_commit=1)
        source += f" wal:{wal_dir}"

    from repro.service.engine import QueryEngine

    engine = QueryEngine(index, cache_capacity=cache_capacity, store=store)
    server = AsyncMapServer(
        engine,
        max_inflight_per_conn=pipeline,
        max_inflight_total=max(1024, connections * pipeline),
        executor_workers=executor_workers,
    )
    server.start_background()
    try:
        rng = random.Random(seed)
        if mutate_frac > 0.0:
            workload = _mutating_workload(index, requests, rng, mutate_frac)
        else:
            workload = _workload(index, requests, rng)
        mutations = sum(1 for r in workload if r["op"] in ("insert", "delete"))
        fsyncs_before = store.wal.stats()["fsyncs"] if store is not None else 0
        latencies, errors, overloaded, elapsed = run_async_load(
            server.address, workload, connections, pipeline
        )
        group_commit: Dict[str, Any] = {}
        if store is not None and server.committer is not None:
            committer = server.committer.stats()
            wal = store.wal.stats()
            wal["fsyncs"] = wal["fsyncs"] - fsyncs_before
            group_commit = {
                "mutations": mutations,
                "fsyncs": wal["fsyncs"],
                "batches": committer["batches"],
                "committed": committer["committed"],
                "max_batch": committer["max_batch"],
                "fsyncs_per_mutation": (
                    wal["fsyncs"] / mutations if mutations else 0.0
                ),
            }
        report = AsyncBenchReport(
            structure=index.name,
            source=source,
            segments=len(index.ctx.segments),
            connections=connections,
            pipeline=pipeline,
            requests=len(latencies),
            errors=errors,
            overloaded=overloaded,
            elapsed_seconds=elapsed,
            throughput_qps=len(latencies) / elapsed if elapsed > 0 else 0.0,
            latency_ms={
                "p50": percentile(latencies, 0.50) * 1e3,
                "p90": percentile(latencies, 0.90) * 1e3,
                "p99": percentile(latencies, 0.99) * 1e3,
                "max": (latencies[-1] if latencies else 0.0) * 1e3,
            },
            totals=dict(engine.stats()["totals"]),
            counters_consistent=engine.counters_consistent(),
            server=server.stats(),
            group_commit=group_commit,
        )
    finally:
        server.stop()
        if store is not None:
            store.close()
    return report


def _connect_bench_async(
    addresses: List[Tuple[str, int]],
    connections: int,
    pipeline: int,
    requests: int,
    seed: int,
    world_size: Optional[float],
) -> AsyncBenchReport:
    """Drive already-running v2-speaking servers (single or routed)."""
    from repro.core.interface import WORLD_SIZE
    from repro.metric_names import COUNTER_FIELDS
    from repro.service.server import send_request

    if world_size is None:
        world_size = float(WORLD_SIZE)
    rng = random.Random(seed)
    workload = _uniform_workload(requests, rng, world_size)
    shares = [workload[i::connections] for i in range(connections)]
    shares = [share for share in shares if share]

    async def spread() -> Tuple[List[float], int, int]:
        chunks = [
            (addresses[i % len(addresses)], share)
            for i, share in enumerate(shares)
        ]
        by_addr: Dict[Tuple[str, int], List[List[Dict[str, Any]]]] = {}
        for address, share in chunks:
            by_addr.setdefault(address, []).append(share)
        results = await asyncio.gather(
            *(_drive(address, addr_shares, pipeline)
              for address, addr_shares in by_addr.items())
        )
        latencies: List[float] = []
        errors = 0
        overloaded = 0
        for lat, err, over in results:
            latencies.extend(lat)
            errors += err
            overloaded += over
        return latencies, errors, overloaded

    start = time.perf_counter()
    latencies, errors, overloaded = asyncio.run(spread())
    elapsed = time.perf_counter() - start
    latencies.sort()

    structure, segments = "remote", 0
    totals = dict.fromkeys([*COUNTER_FIELDS, DISK_ACCESSES], 0)
    consistent = True
    try:
        stats = send_request(addresses[0], {"op": "stats"})
    except OSError:
        stats = {"ok": False}
    if stats.get("ok"):
        result = stats["result"]
        totals = dict(result.get("totals", totals))
        consistent = bool(result.get("counters_consistent", True))
        if "index" in result:
            structure = result["index"]["kind"]
            segments = result["index"]["segments"]
        elif "shards" in result:
            structure = f"routed[{len(result['shards'])}]"
            segments = max(
                (s["index"]["segments"] for s in result["shards"].values()),
                default=0,
            )
    return AsyncBenchReport(
        structure=structure,
        source="connect:" + ",".join(f"{h}:{p}" for h, p in addresses),
        segments=segments,
        connections=connections,
        pipeline=pipeline,
        requests=len(latencies),
        errors=errors,
        overloaded=overloaded,
        elapsed_seconds=elapsed,
        throughput_qps=len(latencies) / elapsed if elapsed > 0 else 0.0,
        latency_ms={
            "p50": percentile(latencies, 0.50) * 1e3,
            "p90": percentile(latencies, 0.90) * 1e3,
            "p99": percentile(latencies, 0.99) * 1e3,
            "max": (latencies[-1] if latencies else 0.0) * 1e3,
        },
        totals=totals,
        counters_consistent=consistent,
    )


def format_async_bench_report(report: AsyncBenchReport) -> str:
    lat = report.latency_ms
    lines = [
        f"async map server benchmark -- {report.structure} over "
        f"{report.source}",
        f"  segments        {report.segments}",
        f"  clients         {report.connections} connections, "
        f"pipeline depth {report.pipeline}",
        f"  requests        {report.requests} ({report.errors} errors, "
        f"{report.overloaded} overloaded)",
        f"  elapsed         {report.elapsed_seconds:.3f} s "
        f"({report.throughput_qps:.0f} q/s)",
        f"  latency (ms)    p50={lat['p50']:.2f}  p90={lat['p90']:.2f}  "
        f"p99={lat['p99']:.2f}  max={lat['max']:.2f}",
        f"  counters        per-session sums match totals: "
        f"{report.counters_consistent}",
    ]
    gc = report.group_commit
    if gc:
        lines.append(
            f"  group commit    {gc['mutations']} mutations -> "
            f"{gc['fsyncs']} fsyncs in {gc['batches']} batches "
            f"(max batch {gc['max_batch']}, "
            f"{gc['fsyncs_per_mutation']:.2f} fsyncs/mutation)"
        )
    return "\n".join(lines)
