"""The asyncio map server: one event loop, thousands of connections.

:class:`AsyncMapServer` replaces thread-per-connection with a single
event loop plus a bounded executor for engine calls. It speaks both
wire protocols -- v1 newline-JSON exactly as the threaded
:class:`~repro.service.server.MapServer` does, and the negotiated v2
framing (:mod:`repro.aio.frames`) that lets one connection pipeline
many outstanding requests and receive responses out of order.

Architecture, per connection:

* a **reader** coroutine parses lines/frames off the socket (with the
  same idle timeout and size caps as the threaded server), runs
  admission control, and appends accepted requests to the connection's
  pending deque;
* one global **scheduler** drains those deques round-robin -- one
  request per connection per turn -- so a client pipelining thousands
  of requests cannot starve its neighbours (per-client fairness), and
  hands each request to the bounded executor;
* a **writer** coroutine owns the socket's write side: v1 responses go
  out in arrival order (the protocol has no ids, order *is* the
  correlation), v2 responses go out in completion order carrying their
  request id.

Admission control: past ``max_inflight_per_conn`` (or the global
``max_inflight_total`` high-water mark) a request is answered
immediately with a structured ``server_overloaded`` error -- it never
queues, so a saturated server stays responsive and its queues bounded.

Durability: mutations run through the engine's deferred commit barrier
(:meth:`~repro.service.engine.QueryEngine.execute_deferred`) and then
await the :class:`~repro.aio.commit.GroupCommitter` -- mutations from
*all* connections accumulate into one WAL fsync batch while the
previous fsync is in flight, with commit-before-ack preserved per
request: no response is written before an fsync covers its LSN.

The dispatch itself is the *shared* service code path --
``parse_request``, ``QueryEngine.execute``, ``error_envelope``,
``shape_result`` -- not a fork of it, so the two servers cannot drift
semantically (the protocol-equivalence suite holds them to that).
"""

from __future__ import annotations

import asyncio
import itertools
import json
import threading
from collections import deque
from concurrent.futures import ThreadPoolExecutor
from typing import Any, Deque, Dict, Optional, Set, Tuple

from repro.errors import ProtocolError, ServerOverloadedError
from repro.aio.commit import GroupCommitter
from repro.aio.frames import (
    HEADER_BYTES,
    MAX_FRAME_BYTES,
    PROTOCOL_VERSION_2,
    decode_header,
    encode_frame,
    split_trace_trailer,
)
from repro.obs import dtrace
from repro.obs.clock import clock_info
from repro.obs.profile import PROFILER
from repro.obs.trace import TRACER
from repro.service.api import Delete, Insert, parse_request
from repro.service.server import (
    _COMPACT,
    DEFAULT_IDLE_TIMEOUT,
    MAX_LINE_BYTES,
    error_envelope,
    oversized_envelope,
    shape_result,
)


class EngineBackend:
    """Dispatch target wrapping one :class:`QueryEngine`.

    ``dispatch`` runs on an executor thread (the engine's latch already
    makes that safe -- it is exactly what the threaded server's handler
    threads do) and returns ``(result, lsn, extras)``: ``lsn`` is set
    only for durable mutations, whose ack the server defers to the group
    committer; ``extras`` is ``None`` or envelope-level additions (the
    ``"tc"`` trace attachment). A request runs start-to-finish on one
    executor thread, which is what makes the thread-local trace-context
    handoff (:mod:`repro.obs.dtrace`) sound here too.
    """

    def __init__(self, engine) -> None:
        self.engine = engine
        self.registry = engine.registry
        self.store = engine.store

    def open_conn(self, conn_id: int):
        return self.engine.session(f"aconn-{conn_id}")

    def dispatch(
        self, raw: Dict[str, Any], session
    ) -> Tuple[Any, Optional[int], Optional[Dict[str, Any]]]:
        op = raw.get("op")
        if op == "ping":
            return "pong", None, None
        if op == "clock":
            return clock_info(), None, None
        if op == "profile":
            return (
                PROFILER.run(
                    seconds=raw.get("seconds", 1.0), hz=raw.get("hz", 97)
                ),
                None,
                None,
            )
        traced = False
        if TRACER.enabled:
            traced = True
            tc_raw = raw.get("tc")
            dtrace.set_incoming(
                None if tc_raw is None else dtrace.TraceContext.from_wire(tc_raw)
            )
        try:
            request = parse_request(raw)
            if self.engine.durable and isinstance(request, (Insert, Delete)):
                result, lsn = self.engine.execute_deferred(
                    request, session=session
                )
            else:
                result, lsn = self.engine.execute(request, session=session), None
        except Exception as exc:
            if traced:
                attachment = dtrace.take_outbound()
                if attachment is not None:
                    # Ride the exception: _run builds the error envelope
                    # on the loop thread, where the slot is unreachable.
                    exc.trace_attachment = attachment
            raise
        extras = None
        if traced:
            attachment = dtrace.take_outbound()
            if attachment is not None:
                extras = {"tc": attachment}
        return shape_result(op, result), lsn, extras

    def close(self) -> None:
        pass


class _WireReader:
    """Buffered reads off one socket: v1 lines, v2 frames, bounded drains.

    Owns its buffer so an oversized request can be discarded chunk by
    chunk without ever holding more than one read's worth of it, and so
    switching a connection from line framing to v2 frames mid-stream
    (negotiation) loses no pipelined bytes.
    """

    def __init__(self, reader: asyncio.StreamReader, max_line: int, max_frame: int) -> None:
        self._reader = reader
        self.max_line = max_line
        self.max_frame = max_frame
        self._buf = bytearray()

    async def _fill(self) -> bool:
        chunk = await self._reader.read(65536)
        if not chunk:
            return False
        self._buf.extend(chunk)
        return True

    async def read_line(self) -> Tuple[str, Any]:
        """``("line", bytes)``, ``("oversized", None)``, or ``("eof", None)``."""
        overflowed = False
        while True:
            i = self._buf.find(b"\n")
            if i >= 0:
                oversized = overflowed or i > self.max_line
                line = None if oversized else bytes(self._buf[:i])
                del self._buf[: i + 1]
                if oversized:
                    return ("oversized", None)
                return ("line", line)
            if len(self._buf) > self.max_line:
                overflowed = True  # discard-until-newline mode
                del self._buf[:]
            if not await self._fill():
                return ("eof", None)

    async def read_frame(self) -> Tuple[str, Any]:
        """``("frame", (flags, request_id, body))``, ``("oversized",
        request_id)``, or ``("eof", None)`` on a torn frame."""
        while len(self._buf) < HEADER_BYTES:
            if not await self._fill():
                return ("eof", None)
        flags, length, request_id = decode_header(bytes(self._buf[:HEADER_BYTES]))
        if length > self.max_frame:
            del self._buf[:HEADER_BYTES]
            need = length
            while need:
                take = min(need, len(self._buf))
                del self._buf[:take]
                need -= take
                if need and not await self._fill():
                    return ("eof", None)
            return ("oversized", request_id)
        total = HEADER_BYTES + length
        while len(self._buf) < total:
            if not await self._fill():
                return ("eof", None)  # torn frame: nothing to answer
        body = bytes(self._buf[HEADER_BYTES:total])
        del self._buf[:total]
        return ("frame", (flags, request_id, body))


class _Req:
    __slots__ = ("raw", "wire", "request_id", "echo_v", "arrived", "future")

    def __init__(self, raw, wire, request_id, echo_v, arrived) -> None:
        self.raw = raw
        self.wire = wire  # 1 = line framing, 2 = v2 frames
        self.request_id = request_id
        self.echo_v = echo_v
        self.arrived = arrived
        self.future: Optional[asyncio.Future] = None  # v1 ordering slot


class _Conn:
    __slots__ = (
        "conn_id",
        "wire",
        "writer",
        "state",
        "mode",
        "pending",
        "in_ready",
        "inflight",
        "write_q",
        "closed",
    )

    def __init__(self, conn_id, wire, writer, state) -> None:
        self.conn_id = conn_id
        self.wire = wire
        self.writer = writer
        self.state = state
        self.mode = 1  # until a request pins "v": 2
        self.pending: Deque[_Req] = deque()
        self.in_ready = False
        self.inflight = 0
        self.write_q: asyncio.Queue = asyncio.Queue()
        self.closed = False


class AsyncMapServer:
    """Event-loop server speaking v1 and v2 over one backend.

    ``backend`` defaults to an :class:`EngineBackend` over ``engine``;
    the async shard router passes its own. Use :meth:`start_background`
    from synchronous code (tests, benches) or ``await`` :meth:`start` /
    :meth:`serve_forever` from an event loop (the CLI).
    """

    def __init__(
        self,
        engine=None,
        host: str = "127.0.0.1",
        port: int = 0,
        *,
        backend=None,
        idle_timeout: Optional[float] = DEFAULT_IDLE_TIMEOUT,
        max_line_bytes: int = MAX_LINE_BYTES,
        max_frame_bytes: int = MAX_FRAME_BYTES,
        max_inflight_per_conn: int = 64,
        max_inflight_total: int = 1024,
        executor_workers: int = 4,
    ) -> None:
        if backend is None:
            if engine is None:
                raise ValueError("AsyncMapServer needs an engine or a backend")
            backend = EngineBackend(engine)
        self.engine = engine
        self.backend = backend
        self.host = host
        self.port = port
        self.idle_timeout = idle_timeout
        self.max_line_bytes = max_line_bytes
        self.max_frame_bytes = max_frame_bytes
        self.max_inflight_per_conn = max_inflight_per_conn
        self.max_inflight_total = max_inflight_total
        self.executor_workers = executor_workers
        self.registry = backend.registry
        self.committer: Optional[GroupCommitter] = None
        self.address: Tuple[str, int] = (host, port)

        self._conn_ids = itertools.count(1)
        self._conns: Set[_Conn] = set()
        self._ready: Deque[_Conn] = deque()
        self._queued = 0
        self._inflight_total = 0
        self._loop: Optional[asyncio.AbstractEventLoop] = None
        self._server: Optional[asyncio.base_events.Server] = None
        self._executor: Optional[ThreadPoolExecutor] = None
        self._fsync_executor: Optional[ThreadPoolExecutor] = None
        self._sched_task: Optional[asyncio.Task] = None
        self._conn_tasks: Set[asyncio.Task] = set()
        self._run_tasks: Set[asyncio.Task] = set()
        self._work: Optional[asyncio.Event] = None
        self._sem: Optional[asyncio.Semaphore] = None
        self._stop_event: Optional[asyncio.Event] = None
        self._thread: Optional[threading.Thread] = None
        self._thread_ready: Optional[threading.Event] = None
        self._thread_error: Optional[BaseException] = None

        reg = self.registry
        self._g_connections = reg.gauge("repro_server_connections")
        self._g_inflight = reg.gauge("repro_server_inflight")
        self._g_queue_depth = reg.gauge("repro_server_queue_depth")
        self._c_requests = {
            1: reg.counter("repro_server_requests_total", proto="v1"),
            2: reg.counter("repro_server_requests_total", proto="v2"),
        }
        self._c_overloaded = reg.counter("repro_server_overloaded_total")
        self._c_oversized = reg.counter("repro_server_frames_oversized_total")
        self._c_idle_timeouts = reg.counter("repro_server_idle_timeouts_total")
        self._h_queue_wait = reg.histogram("repro_server_queue_wait_seconds")

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    async def start(self) -> None:
        """Bind the listening socket and start the scheduler."""
        self._loop = asyncio.get_running_loop()
        self._executor = ThreadPoolExecutor(
            max_workers=self.executor_workers, thread_name_prefix="aio-engine"
        )
        store = getattr(self.backend, "store", None)
        if store is not None:
            # Fsyncs get their own single thread so a burst of engine
            # work cannot queue ahead of the durability path.
            self._fsync_executor = ThreadPoolExecutor(
                max_workers=1, thread_name_prefix="aio-fsync"
            )
            self.committer = GroupCommitter(store, self._loop, self._fsync_executor)
        self._work = asyncio.Event()
        self._sem = asyncio.Semaphore(max(2, self.executor_workers * 2))
        self._server = await asyncio.start_server(
            self._client_connected, self.host, self.port
        )
        self.address = self._server.sockets[0].getsockname()[:2]
        self._sched_task = self._loop.create_task(self._scheduler())

    async def serve_forever(self) -> None:
        if self._server is None:
            await self.start()
        async with self._server:
            await self._server.serve_forever()

    async def shutdown(self) -> None:
        """Close the listener, sever connections, stop the workers."""
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
        if self._sched_task is not None:
            self._sched_task.cancel()
        for task in list(self._run_tasks) + list(self._conn_tasks):
            task.cancel()
        await asyncio.gather(
            *self._run_tasks, *self._conn_tasks, return_exceptions=True
        )
        if self._executor is not None:
            self._executor.shutdown(wait=True, cancel_futures=True)
        if self._fsync_executor is not None:
            self._fsync_executor.shutdown(wait=True, cancel_futures=True)
        self.backend.close()

    # -- background-thread mode (tests, benches, loadgen) ---------------
    def start_background(self) -> threading.Thread:
        """Run the event loop on a daemon thread; returns once bound."""
        self._thread_ready = threading.Event()
        thread = threading.Thread(
            target=self._thread_main, name="aio-map-server", daemon=True
        )
        self._thread = thread  # repro-lint: disable=CC03 -- lifecycle field: start_background/stop are called by the single owning thread, never concurrently
        thread.start()
        if not self._thread_ready.wait(timeout=10.0):
            raise RuntimeError("async server failed to start within 10s")
        if self._thread_error is not None:
            raise RuntimeError(
                f"async server failed to start: {self._thread_error}"
            ) from self._thread_error
        return thread

    def _thread_main(self) -> None:
        try:
            asyncio.run(self._thread_body())
        except BaseException as exc:  # surfaced to start_background/stop
            self._thread_error = exc
            if self._thread_ready is not None:
                self._thread_ready.set()

    async def _thread_body(self) -> None:
        await self.start()
        self._stop_event = asyncio.Event()
        self._thread_ready.set()
        await self._stop_event.wait()
        await self.shutdown()

    def stop(self) -> None:
        """Deterministic shutdown of a :meth:`start_background` server."""
        if self._thread is None:
            return
        if self._loop is not None and self._stop_event is not None:
            try:
                self._loop.call_soon_threadsafe(self._stop_event.set)
            except RuntimeError:
                pass  # loop already closed: the thread is on its way out
        self._thread.join(timeout=10.0)
        self._thread = None  # repro-lint: disable=CC03 -- lifecycle field: see start_background; stop runs after the loop thread exited

    # ------------------------------------------------------------------
    # Connection handling
    # ------------------------------------------------------------------
    async def _client_connected(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        task = asyncio.current_task()
        self._conn_tasks.add(task)
        conn_id = next(self._conn_ids)
        conn = _Conn(
            conn_id,
            _WireReader(reader, self.max_line_bytes, self.max_frame_bytes),
            writer,
            self.backend.open_conn(conn_id),
        )
        self._conns.add(conn)
        self._g_connections.set(len(self._conns))
        writer_task = self._loop.create_task(self._writer_loop(conn))
        try:
            await self._read_loop(conn)
        except asyncio.CancelledError:
            pass  # shutdown cancelled us; fall through to the teardown below
        finally:
            conn.closed = True
            self._conns.discard(conn)
            self._g_connections.set(len(self._conns))
            conn.write_q.put_nowait(None)  # sentinel: writer drains out
            writer_task.cancel()
            try:
                await asyncio.gather(writer_task, return_exceptions=True)
            except asyncio.CancelledError:
                pass  # shutdown cancelled the teardown await itself
            writer.close()
            try:
                await writer.wait_closed()
            except (asyncio.CancelledError, ConnectionError, OSError):
                pass  # peer already gone; the close still released the fd
            self._conn_tasks.discard(task)

    async def _read_loop(self, conn: _Conn) -> None:
        while True:
            read = (
                conn.wire.read_line() if conn.mode == 1 else conn.wire.read_frame()
            )
            try:
                if self.idle_timeout is not None:
                    kind, value = await asyncio.wait_for(read, self.idle_timeout)
                else:
                    kind, value = await read
            except asyncio.TimeoutError:
                self._c_idle_timeouts.inc()
                return  # idle connection: close it cleanly
            except (ConnectionError, OSError):
                return
            if kind == "eof":
                return
            if kind == "oversized":
                self._c_oversized.inc()
                limit = (
                    self.max_line_bytes if conn.mode == 1 else self.max_frame_bytes
                )
                request_id = value if value is not None else 0
                self._respond_immediate(
                    conn, oversized_envelope(limit), conn.mode, request_id
                )
                continue
            if conn.mode == 1:
                self._on_v1_line(conn, value)
            else:
                flags, request_id, body = value
                self._on_v2_frame(conn, flags, request_id, body)

    def _on_v1_line(self, conn: _Conn, line: bytes) -> None:
        echo_v: Optional[int] = None
        try:
            raw = json.loads(line)
            if not isinstance(raw, dict):
                raise ProtocolError(
                    f"request must be a JSON object, got {type(raw).__name__}"
                )
            v = raw.get("v")
            if v is not None:
                if (
                    isinstance(v, bool)
                    or not isinstance(v, int)
                    or v not in (1, PROTOCOL_VERSION_2)
                ):
                    raise ProtocolError(
                        f"unsupported protocol version {v!r}; this server "
                        f"speaks v1 and v{PROTOCOL_VERSION_2}"
                    )
                echo_v = v
        except Exception as exc:  # a bad line answers, never disconnects
            self._respond_immediate(
                conn, {"ok": False, "error": error_envelope(exc)}, 1, 0
            )
            return
        if echo_v == PROTOCOL_VERSION_2:
            # Upgrade: this request is answered in v1 with "v": 2 echoed;
            # every byte the client sends after it is parsed as frames.
            conn.mode = 2
        self._admit(
            conn, _Req(raw, 1, 0, echo_v, self._loop.time())
        )

    def _on_v2_frame(
        self, conn: _Conn, flags: int, request_id: int, body: bytes
    ) -> None:
        try:
            body, trailer = split_trace_trailer(flags, body)
            raw = json.loads(body)
            if not isinstance(raw, dict):
                raise ProtocolError(
                    f"frame payload must be a JSON object, got "
                    f"{type(raw).__name__}"
                )
            if trailer is not None:
                ctx = dtrace.TraceContext.from_trailer(trailer)
                if ctx is not None:
                    # Normalize to the v1 JSON form: downstream (the
                    # backend dispatch) handles both wires identically.
                    raw["tc"] = ctx.to_wire()
        except Exception as exc:
            self._respond_immediate(
                conn, {"ok": False, "error": error_envelope(exc)}, 2, request_id
            )
            return
        self._admit(conn, _Req(raw, 2, request_id, None, self._loop.time()))

    # ------------------------------------------------------------------
    # Admission, scheduling, dispatch
    # ------------------------------------------------------------------
    def _admit(self, conn: _Conn, req: _Req) -> None:
        self._c_requests[req.wire].inc()
        if (
            conn.inflight >= self.max_inflight_per_conn
            or self._inflight_total >= self.max_inflight_total
        ):
            self._c_overloaded.inc()
            envelope = {
                "ok": False,
                "error": error_envelope(
                    ServerOverloadedError(
                        f"server overloaded: connection has {conn.inflight} "
                        f"requests in flight "
                        f"(limits: {self.max_inflight_per_conn}/connection, "
                        f"{self.max_inflight_total} total); retry later"
                    )
                ),
            }
            if req.echo_v is not None:
                envelope["v"] = req.echo_v
            self._respond_immediate(conn, envelope, req.wire, req.request_id)
            return
        conn.inflight += 1
        self._inflight_total += 1  # repro-lint: disable=CC03 -- event-loop confined: _admit and _run both run on the loop thread; _sem bounds executor handoffs, it guards no state
        self._g_inflight.set(self._inflight_total)
        if req.wire == 1:
            # v1 has no request ids: the response slot is reserved *now*
            # so responses leave in arrival order however execution lands.
            req.future = self._loop.create_future()
            conn.write_q.put_nowait(("fut", req))
        conn.pending.append(req)
        self._queued += 1  # repro-lint: disable=CC03 -- event-loop confined: only the loop thread mutates the queue depth
        self._g_queue_depth.set(self._queued)
        if not conn.in_ready:
            conn.in_ready = True
            self._ready.append(conn)
        self._work.set()

    async def _scheduler(self) -> None:
        """Round-robin drain: one request per ready connection per turn."""
        while True:
            await self._work.wait()
            if not self._ready:
                self._work.clear()
                continue
            conn = self._ready.popleft()
            if not conn.pending:
                conn.in_ready = False
                continue
            req = conn.pending.popleft()
            self._queued -= 1  # repro-lint: disable=CC03 -- event-loop confined: the scheduler is a loop task
            self._g_queue_depth.set(self._queued)
            if conn.pending:
                self._ready.append(conn)
            else:
                conn.in_ready = False
            # The semaphore bounds concurrent executor handoffs; waiting
            # here (not in the task) keeps the round-robin order honest.
            await self._sem.acquire()  # repro-lint: disable=CC04 -- acquired here, released in _run's finally: the slot spans the task boundary by design, so `with` cannot express it
            task = self._loop.create_task(self._run(conn, req))
            self._run_tasks.add(task)
            task.add_done_callback(self._run_tasks.discard)

    async def _run(self, conn: _Conn, req: _Req) -> None:
        try:
            self._h_queue_wait.observe(self._loop.time() - req.arrived)
            if conn.closed:
                envelope: Dict[str, Any] = {"ok": False}
            else:
                try:
                    result, lsn, extras = await self._loop.run_in_executor(
                        self._executor, self.backend.dispatch, req.raw, conn.state
                    )
                    if lsn is not None and self.committer is not None:
                        await self.committer.wait_durable(lsn)
                    envelope = {"ok": True, "result": result}
                    if extras:
                        envelope.update(extras)
                except Exception as exc:  # structured error, never a drop
                    envelope = {"ok": False, "error": error_envelope(exc)}
                    partial = getattr(exc, "partial", None)
                    if partial is not None:
                        envelope["partial"] = partial
                    attachment = getattr(exc, "trace_attachment", None)
                    if attachment is not None:
                        envelope["tc"] = attachment
            if req.echo_v is not None:
                envelope["v"] = req.echo_v
                if req.echo_v == PROTOCOL_VERSION_2 and req.wire == 1:
                    # The upgrade ack advertises optional capabilities;
                    # clients that predate them ignore the extra key.
                    envelope["features"] = {"tc": True}
            self._send(conn, req, envelope)
        finally:
            self._sem.release()
            conn.inflight -= 1
            self._inflight_total -= 1  # repro-lint: disable=CC03 -- event-loop confined: _run is a loop task; see _admit
            self._g_inflight.set(self._inflight_total)

    # ------------------------------------------------------------------
    # Responses
    # ------------------------------------------------------------------
    @staticmethod
    def _encode(envelope: Dict[str, Any], wire: int, request_id: int) -> bytes:
        if wire == 1:
            return json.dumps(envelope, separators=_COMPACT).encode("utf-8") + b"\n"
        return encode_frame(request_id, envelope, response=True)

    def _send(self, conn: _Conn, req: _Req, envelope: Dict[str, Any]) -> None:
        data = self._encode(envelope, req.wire, req.request_id)
        if req.wire == 1:
            if not req.future.done():
                req.future.set_result(data)
        else:
            conn.write_q.put_nowait(("data", data))

    def _respond_immediate(
        self, conn: _Conn, envelope: Dict[str, Any], wire: int, request_id: int
    ) -> None:
        """Reader-side responses (parse errors, admission, oversized).

        Enqueued directly: the write queue is FIFO, so relative to v1
        futures (enqueued at arrival) this still answers in order.
        """
        conn.write_q.put_nowait(("data", self._encode(envelope, wire, request_id)))

    async def _writer_loop(self, conn: _Conn) -> None:
        while True:
            item = await conn.write_q.get()
            if item is None:
                return
            kind, value = item
            data = await value.future if kind == "fut" else value
            try:
                conn.writer.write(data)
                await conn.writer.drain()
            except (ConnectionError, OSError):
                return  # peer gone: responses have nowhere to go

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    def stats(self) -> Dict[str, Any]:
        out = {
            "connections": len(self._conns),
            "inflight": self._inflight_total,
            "queued": self._queued,
        }
        if self.committer is not None:
            out["group_commit"] = self.committer.stats()
        return out
