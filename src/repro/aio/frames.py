"""Wire protocol v2: length-prefixed binary frames with request ids.

The v1 protocol is newline-delimited JSON with strictly ordered
responses -- fine for one request at a time, hopeless for pipelining
(the client cannot tell which response answers which request, so the
server must serialize). Protocol v2 keeps the JSON *payloads* (same op
table, same envelopes, same error codes) and changes only the framing::

    +-----------+----------------+--------------------+---------------+
    | flags: u8 | length: u32 LE | request_id: u64 LE | payload bytes |
    +-----------+----------------+--------------------+---------------+

* ``length`` counts the payload bytes only (the header is fixed at 13).
* ``flags``: bit 0 set on a *response* frame (so a frame's direction is
  self-describing in captures); bit 1 (:data:`FLAG_TRACE`) marks a
  distributed-trace context trailer -- the *last*
  :data:`~repro.obs.dtrace.TRAILER_BYTES` bytes of the body (counted in
  ``length``) are the packed 25-byte context
  (16-byte trace id + 8-byte span id + 1 flag byte) and the JSON payload
  is everything before them. All other bits must be 0.

  A client may only set :data:`FLAG_TRACE` after the server advertised
  ``"features": {"tc": true}`` on the upgrade ack; servers that predate
  the feature never send the key, so old peers never see the flag --
  negotiated, zero-risk to existing deployments.
* ``request_id`` is chosen by the client, echoed verbatim on the
  response frame. Ids need not be sequential or unique -- the server
  never interprets them -- but a pipelining client will want them
  unique per connection to correlate out-of-order responses.
* ``payload`` is one UTF-8 JSON object: a v1 request dict on the way
  in, a v1 response envelope (``{"ok": ...}``) on the way out. No
  trailing newline.

Negotiation rides on the existing v1 ``"v"`` pin: a client opens the
connection in v1, sends any request with ``"v": 2`` (conventionally
``{"op": "ping", "v": 2}``), and the async server answers that request
in v1 framing with ``"v": 2`` echoed -- every byte after that response
is v2 frames in both directions. A server that does not speak v2 (the
threaded oracle) rejects the pin with a ``bad_args`` error naming the
version it speaks, and the connection simply stays v1: the downgrade
path is the error path, no extra round trip.

Frames larger than :data:`MAX_FRAME_BYTES` are not read into memory:
the header names the offender's request id, so the server drains the
payload in bounded chunks and answers *that id* with a structured
``frame_too_large`` error. A torn frame (EOF mid-header or mid-payload)
has no id to answer and closes the connection, mirroring how v1 treats
EOF mid-line.
"""

from __future__ import annotations

import json
import struct
from typing import Any, Dict, Optional, Tuple

from repro.obs.dtrace import TRAILER_BYTES

#: Protocol version clients pin (``{"v": 2}``) to negotiate framing.
PROTOCOL_VERSION_2 = 2

#: ``<flags u8> <length u32> <request_id u64>``, little-endian, packed.
FRAME_HEADER = struct.Struct("<BIQ")

HEADER_BYTES = FRAME_HEADER.size

#: Bit 0 of ``flags``: this frame is a response.
FLAG_RESPONSE = 0x01

#: Bit 1 of ``flags``: the body ends with a packed trace-context
#: trailer (:data:`repro.obs.dtrace.TRAILER_BYTES` bytes). Negotiated:
#: only sent to a peer that advertised ``features.tc``.
FLAG_TRACE = 0x02

#: Largest accepted v2 payload (bytes). Matches the spirit of the v1
#: line cap: one request may carry a big batch, but not the heap.
MAX_FRAME_BYTES = 1 << 20

_COMPACT = (",", ":")


def encode_frame(
    request_id: int,
    payload: Dict[str, Any],
    response: bool = False,
    trace_trailer: Optional[bytes] = None,
) -> bytes:
    """One v2 frame: header + compact JSON payload (+ trace trailer)."""
    body = json.dumps(payload, separators=_COMPACT).encode("utf-8")
    flags = FLAG_RESPONSE if response else 0
    if trace_trailer is not None:
        if len(trace_trailer) != TRAILER_BYTES:
            raise ValueError(
                f"trace trailer must be {TRAILER_BYTES} bytes, "
                f"got {len(trace_trailer)}"
            )
        flags |= FLAG_TRACE
        body += trace_trailer
    return FRAME_HEADER.pack(flags, len(body), request_id) + body


def split_trace_trailer(flags: int, body: bytes) -> Tuple[bytes, Optional[bytes]]:
    """``(payload, trailer-or-None)`` for a received frame body.

    A flagged frame too short to hold the trailer yields an empty
    payload, which the JSON parse then rejects as malformed -- a
    structured error, not a crash.
    """
    if not flags & FLAG_TRACE:
        return body, None
    return body[:-TRAILER_BYTES], body[-TRAILER_BYTES:] or None


def decode_header(header: bytes) -> Tuple[int, int, int]:
    """``(flags, length, request_id)`` from 13 header bytes."""
    return FRAME_HEADER.unpack(header)


def decode_payload(body: bytes) -> Dict[str, Any]:
    """Parse a frame payload; raises ``ValueError`` on malformed JSON."""
    payload = json.loads(body)
    if not isinstance(payload, dict):
        raise ValueError(
            f"frame payload must be a JSON object, got "
            f"{type(payload).__name__}"
        )
    return payload
