"""Asyncio serving layer: pipelined wire protocol v2 over one event loop.

The threaded :class:`~repro.service.server.MapServer` spends a thread
per connection and serializes each connection's requests; this package
serves the same engine (and the same shard-router core) from a single
event loop with a bounded executor, adds the negotiated length-prefixed
v2 framing for pipelining, admission control with structured
``server_overloaded`` errors, per-client fair scheduling, and
backpressure-aware group commit across connections. The threaded server
remains the v1 oracle the protocol-equivalence suite compares against.
"""

from repro.aio.client import AsyncMapClient, send_request_async
from repro.aio.commit import GroupCommitter
from repro.aio.frames import (
    FLAG_RESPONSE,
    FRAME_HEADER,
    HEADER_BYTES,
    MAX_FRAME_BYTES,
    PROTOCOL_VERSION_2,
    decode_header,
    decode_payload,
    encode_frame,
)
from repro.aio.loadgen import (
    AsyncBenchReport,
    bench_serve_async,
    format_async_bench_report,
    run_async_load,
)
from repro.aio.router import AsyncShardRouter, RouterBackend
from repro.aio.server import AsyncMapServer, EngineBackend

__all__ = [
    "AsyncBenchReport",
    "AsyncMapClient",
    "AsyncMapServer",
    "AsyncShardRouter",
    "EngineBackend",
    "FLAG_RESPONSE",
    "FRAME_HEADER",
    "GroupCommitter",
    "HEADER_BYTES",
    "MAX_FRAME_BYTES",
    "PROTOCOL_VERSION_2",
    "RouterBackend",
    "bench_serve_async",
    "decode_header",
    "decode_payload",
    "encode_frame",
    "format_async_bench_report",
    "run_async_load",
    "send_request_async",
]
