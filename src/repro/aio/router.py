"""The shard router behind the asyncio front end.

:class:`AsyncShardRouter` is an :class:`~repro.aio.server.AsyncMapServer`
whose backend is the *same* :class:`~repro.shard.router.RouterCore` the
threaded router serves -- scatter, merge, drain gate, reload, partial
results: one implementation, now reachable over v1 lines *and* v2
frames. A pipelining client can hold thousands of routed requests in
flight on one connection; each one still fans out to the shard workers
over the core's blocking client pool (the async server runs dispatch on
its executor, which is exactly where blocking scatter belongs).
"""

from __future__ import annotations

from typing import Any, Dict, Optional, Tuple

from repro.aio.server import AsyncMapServer
from repro.obs import dtrace
from repro.obs.trace import TRACER
from repro.shard.router import RouterCore


class RouterBackend:
    """Adapts :class:`RouterCore` to the async server's backend slot.

    Routed requests have no LSN to defer (durability lives in the shard
    workers), so ``dispatch`` always returns ``(result, None, extras)``
    and the async server never engages its group committer (``store`` is
    None). ``extras`` carries the trace attachment (ids and, for sampled
    requests, the stitched span tree reference) when tracing is armed --
    the same ``"tc"`` envelope field the threaded router serves.
    """

    store = None

    def __init__(self, core: RouterCore) -> None:
        self.core = core
        self.registry = core.registry

    def open_conn(self, conn_id: int) -> None:
        return None

    def dispatch(
        self, raw: Dict[str, Any], state: Any
    ) -> Tuple[Any, None, Optional[Dict[str, Any]]]:
        core = self.core
        op = str(raw.get("op"))
        traced = TRACER.enabled
        try:
            if op == "reload":
                # reload *is* the drainer; entering the gate would
                # deadlock on itself (same carve-out as the threaded
                # router's respond()).
                result = core.reload()
            else:
                core._enter_gate()
                try:
                    result = core.dispatch_traced(raw)
                finally:
                    core._exit_gate()
        except Exception as exc:
            core.registry.counter(
                "repro_router_requests_total", op=op, status="error"
            ).inc()
            if traced:
                # The error envelope is built on the event-loop thread;
                # carry the attachment across on the exception itself.
                attachment = dtrace.take_outbound()
                if attachment is not None:
                    exc.trace_attachment = attachment
            raise
        core.registry.counter(
            "repro_router_requests_total", op=op, status="ok"
        ).inc()
        extras: Optional[Dict[str, Any]] = None
        if traced:
            attachment = dtrace.take_outbound()
            if attachment is not None:
                extras = {"tc": attachment}
        return result, None, extras

    def close(self) -> None:
        self.core.close_clients()


class AsyncShardRouter(AsyncMapServer):
    """Scatter-gather router served by the asyncio event loop."""

    def __init__(
        self,
        root: str,
        host: str = "127.0.0.1",
        port: int = 0,
        timeout: float = 5.0,
        **kwargs: Any,
    ) -> None:
        core = RouterCore(root, timeout=timeout)
        super().__init__(backend=RouterBackend(core), host=host, port=port, **kwargs)
        self.core = core

    # Conveniences mirroring the threaded router's surface.
    @property
    def shard_map(self):
        return self.core.shard_map

    @property
    def clients(self):
        return self.core.clients

    def reload(self) -> Dict[str, Any]:
        return self.core.reload()
