"""Cross-connection group commit for the async server.

The WAL already batches fsyncs *within* one caller (``group_commit=N``
defers the fsync until N records are pending), but the threaded server
cannot batch *across* connections: each handler thread calls
``store.commit()`` inline and blocks until its own fsync. On an event
loop the shape inverts naturally -- while one fsync is in flight, every
mutation that lands meanwhile just parks a future here, and the next
fsync covers them all. One disk flush per *batch*, not per request.

Commit-before-ack is preserved per request: a waiter's future resolves
only once an fsync has covered its LSN, and the response frame is not
written until that future resolves. The engine side of the contract is
:meth:`repro.service.engine.QueryEngine.execute_deferred`, which
suppresses the inline commit barrier and reports the mutation's LSN.

All state here is touched only from the event loop thread; the fsync
itself runs in an executor (it blocks), and the loop awaits it. There
is deliberately no timer: the "batch window" is exactly the duration of
the in-flight fsync, so an idle server adds zero latency (first
mutation fsyncs immediately) and a saturated one converges to the
disk's flush rate.
"""

from __future__ import annotations

import asyncio
from typing import List, Optional, Tuple


class GroupCommitter:
    """Batch WAL fsyncs across connections; resolve waiters by LSN."""

    def __init__(self, store, loop, executor) -> None:
        self.store = store
        self._loop = loop
        self._executor = executor
        self._waiters: List[Tuple[int, asyncio.Future]] = []
        self._flush_task: Optional[asyncio.Task] = None
        #: Highest LSN known to be covered by an fsync.
        self.synced_lsn = store.last_lsn
        #: Fsync batches run / mutations acked through them / largest batch.
        self.batches = 0
        self.committed = 0
        self.max_batch = 0

    async def wait_durable(self, lsn: int) -> None:
        """Return once an fsync covers ``lsn`` (joining the next batch)."""
        if lsn <= self.synced_lsn:
            return
        future = self._loop.create_future()
        self._waiters.append((lsn, future))
        if self._flush_task is None:
            self._flush_task = self._loop.create_task(self._flush_loop())
        await future

    async def _flush_loop(self) -> None:
        try:
            while self._waiters:
                batch = self._waiters
                self._waiters = []
                # Everything logged so far is covered by this fsync --
                # including mutations that raced in after their barrier
                # but before this snapshot of last_lsn.
                target = self.store.last_lsn
                await self._loop.run_in_executor(
                    self._executor, self.store.wal.sync
                )
                self.synced_lsn = max(self.synced_lsn, target)
                self.batches += 1
                self.committed += len(batch)
                self.max_batch = max(self.max_batch, len(batch))
                for _lsn, future in batch:
                    if not future.done():
                        future.set_result(None)
        finally:
            # No await between the loop's empty check and this clear, so
            # a new waiter always sees either a live task or None.
            self._flush_task = None

    def stats(self) -> dict:
        return {
            "batches": self.batches,
            "committed": self.committed,
            "max_batch": self.max_batch,
            "synced_lsn": self.synced_lsn,
        }
