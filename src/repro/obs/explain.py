"""Query EXPLAIN: the paper's three metrics decomposed by level and cause.

The aggregates (``MetricsCounters``, the per-session attribution, the
registry) say *how much* a query cost; an :class:`ExplainProfile` says
*where*: which tree level the disk accesses and bounding-box comparisons
happened at, how many candidates the R+ duplication produced and the
query layer deduplicated, how many directory blocks the PMR decoded and
how many locational-code B-tree leaves its interval scans walked, and
how much of the bill was the segment table verifying geometry.

Mechanics: the engine builds a profile, attaches it to the executing
thread through the tracer's span context
(:meth:`repro.obs.trace.Tracer.attach_profile`), and runs the query.
Each core traversal call site checks ``TRACER.profiling`` (one attribute
load when off) and, when a profile is attached, routes through a
profiled variant that performs *the same pool traffic and counter
charges in the same order* but brackets each unit of work in a
:meth:`ExplainProfile.charge_level` / :meth:`ExplainProfile.charge`
delta window. A window snapshots the live scratch counters on entry and
adds the deltas to its bucket on exit -- so summing every bucket of the
profile reproduces the engine's aggregate counters for the query
*exactly*, by construction (the ``exact`` field of the explain report;
the test suite asserts it over fixed-seed workloads on all three
structures).

The profile object itself never mutates any ``MetricsCounters`` (it only
reads them), keeping lint rule RP03's ownership story intact: counters
are still charged only by storage and core code.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional

from repro.metric_names import (
    BBOX_COMPS,
    BUFFER_HITS,
    COUNTER_FIELDS,
    DISK_ACCESSES,
    DISK_READS,
    DISK_WRITES,
    SEGMENT_COMPS,
)

#: Cause bucket for segment-table verification fetches.
CAUSE_SEGMENT_TABLE = "segment_table"
#: Cause bucket for the PMR's locational-code B-tree traffic.
CAUSE_BTREE = "btree"

#: Count keys (the non-delta tallies a profile accumulates).
COUNT_CANDIDATES = "candidates"
COUNT_DUPLICATES = "duplicates_deduped"
COUNT_RESULTS = "results"
COUNT_SEGMENT_FETCHES = "segment_fetches"
COUNT_BLOCKS_DECODED = "blocks_decoded"
COUNT_BTREE_SCANS = "btree_scans"
COUNT_BTREE_LEAVES = "btree_leaves_scanned"
COUNT_BTREE_INTERNAL = "btree_internal_visited"
COUNT_NN_EXPANSIONS = "nn_expansions"


class Bucket:
    """Counter deltas (plus structural tallies) attributed to one level
    or one cause."""

    __slots__ = (
        "node_visits",
        *COUNTER_FIELDS,
        "entries_examined",
        "entries_matched",
        "entries_pruned",
    )

    def __init__(self) -> None:
        self.node_visits = 0
        self.disk_reads = 0
        self.disk_writes = 0
        self.buffer_hits = 0
        self.segment_comps = 0
        self.bbox_comps = 0
        self.entries_examined = 0
        self.entries_matched = 0
        self.entries_pruned = 0

    def to_dict(self) -> Dict[str, int]:
        out = {name: getattr(self, name) for name in COUNTER_FIELDS}
        out["node_visits"] = self.node_visits
        out["entries_examined"] = self.entries_examined
        out["entries_matched"] = self.entries_matched
        out["entries_pruned"] = self.entries_pruned
        return out


class _ChargeWindow:
    """Context manager adding the counter movement inside it to a bucket.

    Reads the *live* counters object it was handed (under the engine's
    attribution this is the per-query scratch set), so nesting windows
    would double-charge -- call sites keep them flat.
    """

    __slots__ = ("_bucket", "_counters", "_base")

    def __init__(self, bucket: Bucket, counters) -> None:
        self._bucket = bucket
        self._counters = counters

    def __enter__(self) -> Bucket:
        c = self._counters
        self._base = (
            c.disk_reads,
            c.disk_writes,
            c.buffer_hits,
            c.segment_comps,
            c.bbox_comps,
        )
        return self._bucket

    def __exit__(self, *exc) -> None:
        c, base, b = self._counters, self._base, self._bucket
        b.disk_reads += c.disk_reads - base[0]
        b.disk_writes += c.disk_writes - base[1]
        b.buffer_hits += c.buffer_hits - base[2]
        b.segment_comps += c.segment_comps - base[3]
        b.bbox_comps += c.bbox_comps - base[4]


class ExplainProfile:
    """Per-level and per-cause attribution for one explained query.

    One profile serves one query on one thread; nothing here is locked.
    """

    def __init__(self, op: str, structure: str) -> None:
        self.op = op
        self.structure = structure
        self.levels: Dict[int, Bucket] = {}
        self.causes: Dict[str, Bucket] = {}
        self.counts: Dict[str, int] = {}
        #: Node ref -> tree level, maintained by the profiled nearest-
        #: neighbour expansions so heap-ordered visits still attribute to
        #: the right level (root = 0).
        self._node_levels: Dict[Any, int] = {}

    # -- attribution windows -------------------------------------------
    def level(self, depth: int) -> Bucket:
        bucket = self.levels.get(depth)
        if bucket is None:
            bucket = self.levels[depth] = Bucket()
        return bucket

    def cause(self, name: str) -> Bucket:
        bucket = self.causes.get(name)
        if bucket is None:
            bucket = self.causes[name] = Bucket()
        return bucket

    def charge_level(self, depth: int, counters) -> _ChargeWindow:
        """Window attributing counter movement to tree level ``depth``."""
        return _ChargeWindow(self.level(depth), counters)

    def charge(self, cause: str, counters) -> _ChargeWindow:
        """Window attributing counter movement to a named cause."""
        return _ChargeWindow(self.cause(cause), counters)

    def count(self, name: str, n: int = 1) -> None:
        self.counts[name] = self.counts.get(name, 0) + n

    # -- nearest-neighbour level bookkeeping ---------------------------
    def node_level(self, ref: Any) -> int:
        return self._node_levels.get(ref, 0)

    def set_node_level(self, ref: Any, depth: int) -> None:
        self._node_levels[ref] = depth

    # -- totals and reporting ------------------------------------------
    def attributed(self) -> Dict[str, int]:
        """Every counter field summed over all buckets (plus the alias)."""
        totals = dict.fromkeys(COUNTER_FIELDS, 0)
        for bucket in list(self.levels.values()) + list(self.causes.values()):
            for name in COUNTER_FIELDS:
                totals[name] += getattr(bucket, name)
        totals[DISK_ACCESSES] = totals[DISK_READS]
        return totals

    def to_dict(self) -> Dict[str, Any]:
        return {
            "op": self.op,
            "structure": self.structure,
            "levels": [
                dict(level=depth, **self.levels[depth].to_dict())
                for depth in sorted(self.levels)
            ],
            "causes": {
                name: self.causes[name].to_dict()
                for name in sorted(self.causes)
            },
            "counts": dict(sorted(self.counts.items())),
            "attributed": self.attributed(),
        }


def format_explain(report: Dict[str, Any]) -> str:
    """Render an engine explain report as an aligned text table."""
    plan = report["plan"]
    lines = [
        f"EXPLAIN {plan['op']} on {plan['structure']} -- "
        f"{report['result_count']} result(s) in {report['elapsed_ms']:.3f} ms",
        f"  args: {report['args']}",
    ]
    header = (
        f"  {'where':<16}{'visits':>8}{'reads':>8}{'hits':>8}"
        f"{'bbox':>8}{'segcmp':>8}{'pruned':>8}"
    )
    lines.append(header)

    def row(label: str, b: Dict[str, int]) -> str:
        return (
            f"  {label:<16}{b['node_visits']:>8}{b[DISK_READS]:>8}"
            f"{b[BUFFER_HITS]:>8}{b[BBOX_COMPS]:>8}{b[SEGMENT_COMPS]:>8}"
            f"{b['entries_pruned']:>8}"
        )

    for level in plan["levels"]:
        lines.append(row(f"level {level['level']}", level))
    for name, bucket in plan["causes"].items():
        lines.append(row(name, bucket))
    att = plan["attributed"]
    lines.append(
        f"  {'total':<16}{'':>8}{att[DISK_READS]:>8}{att[BUFFER_HITS]:>8}"
        f"{att[BBOX_COMPS]:>8}{att[SEGMENT_COMPS]:>8}{'':>8}"
    )
    if plan["counts"]:
        pairs = ", ".join(f"{k}={v}" for k, v in plan["counts"].items())
        lines.append(f"  counts: {pairs}")
    obs = report["observed"]
    lines.append(
        f"  observed: {DISK_ACCESSES}={obs[DISK_ACCESSES]} "
        f"{BUFFER_HITS}={obs[BUFFER_HITS]} {BBOX_COMPS}={obs[BBOX_COMPS]} "
        f"{SEGMENT_COMPS}={obs[SEGMENT_COMPS]} {DISK_WRITES}={obs[DISK_WRITES]}"
    )
    lines.append(
        f"  attribution exact: {report['exact']}"
        + ("" if report["exact"] else f" (unattributed: {report['unattributed']})")
    )
    cache = report.get("cache")
    if cache is not None:
        lines.append(
            f"  cache: bypassed (canonical key "
            f"{'already cached' if cache['would_hit'] else 'not cached'})"
        )
    wal = report.get("wal")
    if wal is not None:
        lines.append(
            f"  wal: appends={wal['appends']} fsyncs={wal['fsyncs']} "
            f"(read ops never log)"
        )
    return "\n".join(lines)


def merge_explain_reports(reports: Dict[str, Dict[str, Any]]) -> Dict[str, Any]:
    """Fold per-shard explain reports into one routed cost tree.

    ``reports`` maps shard id -> the report that shard's engine produced
    for the same wrapped query. The merged report keeps every shard's
    full plan under ``shards`` (per-level attribution is only meaningful
    per structure instance), sums the ``observed`` counters -- the routed
    query's true total bill -- and ands the per-shard exactness flags.
    ``result_count`` sums the per-shard counts *before* the router's
    seg_id dedup, so it can exceed the deduplicated answer; the router's
    merge reports the deduplicated length alongside.
    """
    if not reports:
        raise ValueError("no shard reports to merge")
    shard_ids = sorted(reports)
    first = reports[shard_ids[0]]
    observed = dict.fromkeys(COUNTER_FIELDS, 0)
    for shard_id in shard_ids:
        obs = reports[shard_id]["observed"]
        for name in COUNTER_FIELDS:
            observed[name] += obs[name]
    observed[DISK_ACCESSES] = observed[DISK_READS]
    return {
        "op": first["op"],
        "args": first["args"],
        "shards": {shard_id: reports[shard_id] for shard_id in shard_ids},
        "observed": observed,
        "exact": all(reports[s]["exact"] for s in shard_ids),
        "result_count": sum(reports[s]["result_count"] for s in shard_ids),
        "elapsed_ms": max(reports[s]["elapsed_ms"] for s in shard_ids),
    }


def merge_attributed(reports: List[Dict[str, Any]]) -> Dict[str, int]:
    """Sum the ``attributed`` totals of many explain reports (tests and
    the exactness acceptance check)."""
    totals = dict.fromkeys(COUNTER_FIELDS, 0)
    for report in reports:
        att = report["plan"]["attributed"]
        for name in COUNTER_FIELDS:
            totals[name] += att[name]
    totals[DISK_ACCESSES] = totals[DISK_READS]
    return totals
