"""A sampling profiler for live servers: pure stdlib, zero deps.

``SamplingProfiler.run`` polls :func:`sys._current_frames` from the
calling thread at ``hz`` for ``seconds``, collapsing each thread's stack
into the semicolon-joined form flamegraph tooling eats
(``frame;frame;frame count``). No signals, no tracing hooks, no
interpreter switches: between samples the server runs at full speed, so
profiling a production process costs one GIL-holding stack walk per
sample.

**Op attribution** rides the engine's existing instrumentation seam:
``QueryEngine.execute`` registers the op it is running against the
executing thread id (``set_op``/``clear_op``, guarded by the same
one-attribute-load ``enabled`` fast path the tracer uses), and the
sampler prefixes that thread's stacks with ``op:<name>`` -- so the
flamegraph splits by *request kind*, not just by code path. Threads
running no op keep their thread name as the prefix (accept loops, the
WAL group-committer, executor idlers).

The wire op ``{"op": "profile", "seconds": s, "hz": h}`` runs the
sampler inside the handler thread; the shard router fans it to every
worker and merges the results under ``shard:<id>;`` prefixes next to
its own samples (:func:`merge_profiles`). Concurrent profile requests
serialize on one lock -- the sampler is a diagnosis tool, not a
steady-state load.
"""

from __future__ import annotations

import sys
import threading
import time
from typing import Any, Dict, Optional

from repro.sanitize import make_lock

#: Hard caps on one profiling run: a typo cannot pin a handler thread
#: for an hour or sample so fast the server starves.
MAX_SECONDS = 60.0
MAX_HZ = 997
#: Frames kept per stack (deepest truncated first).
MAX_DEPTH = 64


def _collapse(frame: Any, prefix: str) -> str:
    """One thread's stack as ``prefix;outermost;...;innermost``."""
    names = []
    depth = 0
    while frame is not None and depth < MAX_DEPTH:
        code = frame.f_code
        filename = code.co_filename
        slash = filename.rfind("/")
        if slash >= 0:
            filename = filename[slash + 1 :]
        names.append(f"{filename}:{code.co_name}")
        frame = frame.f_back
        depth += 1
    names.append(prefix)
    names.reverse()
    return ";".join(names)


class SamplingProfiler:
    """Sample every thread's stack; attribute samples to the running op."""

    def __init__(self) -> None:
        #: Fast-path flag, same discipline as ``TRACER.enabled``: the
        #: engine checks it with one attribute load per request and only
        #: touches the tid map while a run is live.
        self.enabled = False
        self.runs = 0
        self._ops: Dict[int, str] = {}
        self._run_lock = make_lock("obs.profile.run")

    # -- the engine-side seam ------------------------------------------
    def set_op(self, op: str) -> None:
        """Tag the calling thread with the op it is executing."""
        # Plain dict assignment: atomic under the GIL, distinct keys per
        # thread, and a racy read by the sampler at worst mislabels the
        # one sample straddling the request boundary.
        self._ops[threading.get_ident()] = op

    def clear_op(self) -> None:
        self._ops.pop(threading.get_ident(), None)

    # -- the sampler ----------------------------------------------------
    def run(
        self, seconds: float = 1.0, hz: int = 97, skip_tid: Optional[int] = None
    ) -> Dict[str, Any]:
        """Sample for ``seconds`` at ``hz``; returns the collapsed profile.

        Blocks the calling thread for the duration (that thread is never
        sampled). The result is JSON-ready::

            {"seconds": ..., "hz": ..., "samples": N,
             "stacks": {"op:window;engine.py:_run;...": count, ...}}
        """
        seconds = min(max(float(seconds), 0.05), MAX_SECONDS)
        hz = min(max(int(hz), 1), MAX_HZ)
        me = threading.get_ident()
        interval = 1.0 / hz
        stacks: Dict[str, int] = {}
        samples = 0
        with self._run_lock:
            self._ops.clear()
            self.enabled = True  # repro-lint: disable=CC03 -- benign single-writer flag, same contract as TRACER.enabled: engine threads read it lock-free; a stale read mislabels one sample
            deadline = time.monotonic() + seconds
            try:
                while time.monotonic() < deadline:
                    names = {
                        t.ident: t.name for t in threading.enumerate()
                    }
                    ops = self._ops
                    for tid, frame in sys._current_frames().items():
                        if tid == me or tid == skip_tid:
                            continue
                        prefix = ops.get(tid)
                        if prefix is not None:
                            prefix = f"op:{prefix}"
                        else:
                            prefix = names.get(tid, f"tid:{tid}")
                        key = _collapse(frame, prefix)
                        stacks[key] = stacks.get(key, 0) + 1
                        samples += 1
                    time.sleep(interval)  # repro-lint: disable=CC02 -- sleeping IS the run lock's purpose: it serializes whole profiling windows (a diagnosis tool, not a hot path); no request thread ever takes this lock
            finally:
                self.enabled = False  # repro-lint: disable=CC03 -- benign single-writer flag: see above
                self._ops.clear()
                self.runs += 1
        return {
            "seconds": seconds,
            "hz": hz,
            "samples": samples,
            "stacks": stacks,
        }


def merge_profiles(parts: Dict[str, Dict[str, Any]]) -> Dict[str, Any]:
    """Merge per-process profiles under per-part stack prefixes.

    ``parts`` maps a label (``"router"``, ``"shard:s0"``) to one
    profile; every stack is re-rooted under its label so one flamegraph
    shows the whole service with processes side by side.
    """
    stacks: Dict[str, int] = {}
    samples = 0
    seconds = 0.0
    hz = 0
    for label in sorted(parts):
        prof = parts[label]
        for stack, count in prof.get("stacks", {}).items():
            key = f"{label};{stack}"
            stacks[key] = stacks.get(key, 0) + count
        samples += prof.get("samples", 0)
        seconds = max(seconds, prof.get("seconds", 0.0))
        hz = max(hz, prof.get("hz", 0))
    return {
        "seconds": seconds,
        "hz": hz,
        "samples": samples,
        "parts": sorted(parts),
        "stacks": stacks,
    }


def collapsed_text(profile: Dict[str, Any]) -> str:
    """The profile in collapsed-stack text: ``stack count`` per line,
    heaviest first -- feed straight to ``flamegraph.pl``."""
    items = sorted(
        profile.get("stacks", {}).items(), key=lambda kv: (-kv[1], kv[0])
    )
    return "\n".join(f"{stack} {count}" for stack, count in items)


#: The process-wide profiler, mirroring the TRACER singleton.
PROFILER = SamplingProfiler()
