"""Distributed trace context: W3C-traceparent-style ids on the wire.

A :class:`TraceContext` is the triple a request carries across a process
boundary -- ``trace_id`` (16-byte hex, names the whole distributed
request), ``span_id`` (8-byte hex, names the sender's span that the
receiver's root must parent under), and the ``sampled`` flag (the head
decision, made once at the edge and inherited downstream so every
process keeps or skips *detail* consistently).

Wire forms:

* **v1 (JSON lines)**: an optional ``"tc"`` object on the request --
  ``{"t": trace_id, "s": span_id, "f": flags}`` -- and on the response
  envelope (where it may additionally carry ``"span"``, the worker's
  local span subtree, when the request was sampled). Servers that
  predate this module ignore unknown request keys, so old peers are
  untouched.
* **v2 (length-prefixed frames)**: a fixed 25-byte trailer after the
  JSON payload, gated by ``FLAG_TRACE`` in the frame header and only
  sent to servers that advertised ``"features": {"tc": true}`` on the
  upgrade ack (:mod:`repro.aio.frames`).

The handoff between the server layer (which owns the wire) and the
engine (whose ``execute`` signature must not grow a parameter for this)
is a pair of thread-local slots: the server parks the incoming context
with :func:`set_incoming` just before dispatch, the tracer consumes it
in ``start_trace``; the tracer parks the response attachment with
:func:`set_outbound` in ``finish_trace``, the server collects it with
:func:`take_outbound` while building the envelope. Both servers run a
request start-to-finish on one thread (the async server inside one
executor thread), which is what makes the slots sound.
"""

from __future__ import annotations

import itertools
import os
import threading
from typing import Any, Dict, Optional

#: Bit 0 of the context flags: the head sampling decision.
FLAG_SAMPLED = 0x01

#: Hex digits in each id (16-byte trace id, 8-byte span id).
TRACE_ID_HEX = 32
SPAN_ID_HEX = 16

# Span ids are a random per-process prefix plus a counter: unique across
# processes (4 random prefix bytes) without an os.urandom call per span;
# together they fill the exact 8-byte id the wire forms require.
_ID_PREFIX = os.urandom(4).hex()
_ID_SEQ = itertools.count(1)


def new_trace_id() -> str:
    return os.urandom(16).hex()


def new_span_id() -> str:
    return f"{_ID_PREFIX}{next(_ID_SEQ) & 0xFFFFFFFF:08x}"


def head_sampled(trace_id: str, rate: float) -> bool:
    """The deterministic head decision: hash the trace id against ``rate``.

    Every process that sees the same trace id reaches the same verdict,
    so a context-free retry samples consistently with the original.
    """
    if rate >= 1.0:
        return True
    if rate <= 0.0:
        return False
    return int(trace_id[:8], 16) / 0x100000000 < rate


class TraceContext:
    """One hop's worth of distributed trace identity."""

    __slots__ = ("trace_id", "span_id", "sampled")

    def __init__(self, trace_id: str, span_id: str, sampled: bool) -> None:
        self.trace_id = trace_id
        self.span_id = span_id
        self.sampled = sampled

    @classmethod
    def new_root(cls, rate: float) -> "TraceContext":
        trace_id = new_trace_id()
        return cls(trace_id, new_span_id(), head_sampled(trace_id, rate))

    def child(self) -> "TraceContext":
        """The context to inject into a downstream request: same trace,
        fresh span id (the downstream root's parent), inherited flag."""
        return TraceContext(self.trace_id, new_span_id(), self.sampled)

    # -- v1 JSON form --------------------------------------------------
    def to_wire(self) -> Dict[str, Any]:
        return {
            "t": self.trace_id,
            "s": self.span_id,
            "f": FLAG_SAMPLED if self.sampled else 0,
        }

    @classmethod
    def from_wire(cls, raw: Any) -> Optional["TraceContext"]:
        """Parse the ``"tc"`` request field; None when malformed.

        Tolerant by design: a bad context must degrade to "untraced",
        never fail the request it rode in on.
        """
        if not isinstance(raw, dict):
            return None
        trace_id, span_id = raw.get("t"), raw.get("s")
        if (
            not isinstance(trace_id, str)
            or len(trace_id) != TRACE_ID_HEX
            or not isinstance(span_id, str)
            or len(span_id) != SPAN_ID_HEX
        ):
            return None
        try:
            int(trace_id, 16), int(span_id, 16)
        except ValueError:
            return None
        flags = raw.get("f", 0)
        if not isinstance(flags, int):
            return None
        return cls(trace_id, span_id, bool(flags & FLAG_SAMPLED))

    # -- v2 binary trailer form ----------------------------------------
    def to_trailer(self) -> bytes:
        flags = FLAG_SAMPLED if self.sampled else 0
        return (
            bytes.fromhex(self.trace_id)
            + bytes.fromhex(self.span_id)
            + bytes([flags])
        )

    @classmethod
    def from_trailer(cls, blob: bytes) -> Optional["TraceContext"]:
        if len(blob) != TRAILER_BYTES:
            return None
        return cls(blob[:16].hex(), blob[16:24].hex(), bool(blob[24] & FLAG_SAMPLED))


#: Fixed size of the v2 frame trailer: 16-byte trace id + 8-byte span id
#: + 1 flag byte.
TRAILER_BYTES = 25


# ----------------------------------------------------------------------
# Thread-local server <-> engine handoff
# ----------------------------------------------------------------------
_local = threading.local()


def set_incoming(ctx: Optional[TraceContext]) -> None:
    """Park the request's wire context for the tracer to consume.

    Also clears any outbound attachment a previous request on this
    thread failed to collect, so one aborted request can never leak its
    trace identity into the next request's response.
    """
    _local.incoming = ctx
    _local.outbound = None


def take_incoming() -> Optional[TraceContext]:
    ctx = getattr(_local, "incoming", None)
    if ctx is not None:
        _local.incoming = None
    return ctx


def set_outbound(attachment: Dict[str, Any]) -> None:
    """Park the response's trace attachment for the server to collect."""
    _local.outbound = attachment


def take_outbound() -> Optional[Dict[str, Any]]:
    att = getattr(_local, "outbound", None)
    if att is not None:
        _local.outbound = None
    return att
