"""Build metadata: the git SHA and the ``repro_build_info`` info-gauge.

``repro_build_info`` follows the Prometheus info-metric convention: the
value is the constant 1 and the payload lives in the labels, so a
dashboard can join any series against the version/SHA/page-geometry that
produced it. The benchmark records embed :func:`git_sha` for the same
reason -- a regression report that cannot say *which commit* regressed
is not actionable.
"""

from __future__ import annotations

import os
import subprocess
from typing import Optional

from repro.obs.metrics import Gauge, MetricsRegistry, get_registry


def git_sha(short: bool = True) -> str:
    """The checked-out commit, or ``"unknown"`` outside a git work tree."""
    cmd = ["git", "rev-parse"] + (["--short"] if short else []) + ["HEAD"]
    try:
        proc = subprocess.run(
            cmd,
            capture_output=True,
            text=True,
            timeout=5,
            cwd=os.path.dirname(os.path.abspath(__file__)),
        )
    except (OSError, subprocess.SubprocessError):
        return "unknown"
    if proc.returncode != 0:
        return "unknown"
    return proc.stdout.strip() or "unknown"


def publish_build_info(
    registry: Optional[MetricsRegistry] = None,
    *,
    page_size: int,
    grid_bits: int,
) -> Gauge:
    """Register ``repro_build_info`` (value 1, metadata in the labels).

    ``grid_bits`` is the locational-code resolution (the world's
    ``WORLD_DEPTH``); passed in rather than imported so this module never
    pulls in ``repro.core`` (which itself imports ``repro.obs``).
    """
    from repro import __version__

    registry = registry if registry is not None else get_registry()
    gauge = registry.gauge(
        "repro_build_info",
        version=__version__,
        git_sha=git_sha(),
        page_size=str(page_size),
        grid_bits=str(grid_bits),
    )
    gauge.set(1)
    return gauge
