"""Structural health telemetry, computed without touching a counter.

The paper's counters measure *query* work; these gauges measure the
*shape* the structure has grown into -- the quantity the queries' cost
curves are downstream of. Everything here reads pages through
:meth:`DiskManager.peek` (the sanctioned uncounted bypass, which sees
current state because page payloads are shared with the buffer pool) or
walks the PMR's in-memory directory, so a health refresh moves **no**
``MetricsCounters`` field and perturbs no benchmark: the invariance test
asserts exactly that.

Per structure kind:

* R / R* trees -- node-occupancy histogram (fill quartiles), total
  pairwise overlap area of sibling directory rectangles (the quantity
  the R* split rule minimises), dead-space ratio in the leaves, height,
  pages, entries.
* R+ -- the same, plus the duplication factor (leaf entries per distinct
  segment: the tiling's price); sibling overlap should render as 0.
* PMR -- leaf-block count per decomposition depth, split-threshold
  pressure (fraction of splittable leaves already at/above the
  threshold), mean bucket occupancy, q-edge duplication factor, and the
  locational-code B-tree's height/pages.

:func:`publish_health` pushes the numbers into the process registry as
``repro_index_*`` gauges (labelled by structure) for the Prometheus
export; :func:`compute_health` returns the same numbers as a JSON-ready
dict for the ``{"op": "health"}`` wire response.
"""

from __future__ import annotations

from typing import Any, Dict, Optional

from repro.geometry import Rect
from repro.obs.metrics import MetricsRegistry, get_registry

#: Fill-fraction histogram buckets for tree nodes. ``overfull`` only
#: occurs for the R+'s pathological unsplittable leaves.
OCCUPANCY_BUCKETS = ("0-25", "25-50", "50-75", "75-100", "overfull")


def _occupancy_bucket(fill: float) -> str:
    if fill > 1.0:
        return "overfull"
    if fill <= 0.25:
        return "0-25"
    if fill <= 0.50:
        return "25-50"
    if fill <= 0.75:
        return "50-75"
    return "75-100"


def _tree_health(index) -> Dict[str, Any]:
    """Health for the R-tree family (Guttman, R*, R+): a full peek-walk
    over the node pages."""
    disk = index.ctx.disk
    capacity = index.capacity
    occupancy = {bucket: 0 for bucket in OCCUPANCY_BUCKETS}
    leaves = internal = leaf_entries = 0
    overlap_area = 0.0
    leaf_mbr_area = 0.0
    leaf_covered_area = 0.0

    for pid in index._page_ids:
        node = disk.peek(pid)
        occupancy[_occupancy_bucket(len(node.entries) / capacity)] += 1
        if node.is_leaf:
            leaves += 1
            leaf_entries += len(node.entries)
            if node.entries:
                mbr = Rect.union_of(r for r, _ in node.entries)
                leaf_mbr_area += mbr.area()
                leaf_covered_area += sum(r.area() for r, _ in node.entries)
        else:
            internal += 1
            rects = [r for r, _ in node.entries]
            for i, r in enumerate(rects):
                for other in rects[i + 1 :]:
                    overlap_area += r.overlap_area(other)

    entries = index.entry_count()
    segments = (
        index.segment_count() if hasattr(index, "segment_count") else entries
    )
    # Upper bound on wasted leaf area: entry rectangles may overlap, so
    # the covered sum can exceed the MBR area; clamp to [0, 1].
    dead_space = (
        max(0.0, min(1.0, 1.0 - leaf_covered_area / leaf_mbr_area))
        if leaf_mbr_area > 0
        else 0.0
    )
    return {
        "kind": "tree",
        "height": index.height(),
        "pages": index.page_count(),
        "entries": entries,
        "segments": segments,
        "avg_leaf_occupancy": leaf_entries / (leaves * capacity) if leaves else 0.0,
        "node_occupancy": occupancy,
        "overlap_area": overlap_area,
        "dead_space_ratio": dead_space,
        "duplication_factor": entries / segments if segments else 1.0,
        "leaves": leaves,
        "internal_nodes": internal,
    }


def _pmr_health(index) -> Dict[str, Any]:
    """Health for the PMR quadtree: in-memory directory walk plus the
    B-tree's shape accessors (``block.count`` mirrors the B-tree, so no
    bucket contents are read)."""
    leaves = list(index.root.iter_leaves())
    depth_dist: Dict[int, int] = {}
    for block in leaves:
        depth_dist[block.depth] = depth_dist.get(block.depth, 0) + 1
    splittable = [b for b in leaves if b.depth < index.max_depth]
    pressured = sum(1 for b in splittable if b.count >= index.threshold)
    occupied = [b for b in leaves if b.count > 0]

    entries = index.entry_count()
    segments = index.segment_count()
    return {
        "kind": "pmr",
        "height": index.btree.height,
        "pages": index.page_count(),
        "entries": entries,
        "segments": segments,
        "avg_bucket_count": (
            sum(b.count for b in occupied) / len(occupied) if occupied else 0.0
        ),
        "block_depth": {str(d): depth_dist[d] for d in sorted(depth_dist)},
        "split_pressure": pressured / len(splittable) if splittable else 0.0,
        "duplication_factor": entries / segments if segments else 1.0,
        "leaf_blocks": len(leaves),
        "occupied_blocks": len(occupied),
        "threshold": index.threshold,
        "btree_height": index.btree.height,
    }


def compute_health(index) -> Dict[str, Any]:
    """Structural health of one index, as a JSON-ready dict.

    Dispatches on shape: the PMR exposes a block directory (``root`` +
    ``btree``); anything with paged nodes and a capacity gets the tree
    walk. Reads only via ``disk.peek`` / in-memory state -- never through
    the buffer pool -- so no counter moves.
    """
    report: Dict[str, Any]
    if hasattr(index, "btree") and hasattr(index, "root"):
        report = _pmr_health(index)
    elif hasattr(index, "_page_ids") and hasattr(index, "capacity"):
        report = _tree_health(index)
    else:
        report = {
            "kind": "generic",
            "height": index.height(),
            "pages": index.page_count(),
            "entries": index.entry_count(),
            "segments": (
                index.segment_count()
                if hasattr(index, "segment_count")
                else index.entry_count()
            ),
        }
    report["structure"] = index.name
    return report


#: Health-report keys exported as plain (single-sample) gauges.
_SCALAR_GAUGES = (
    ("height", "repro_index_height"),
    ("pages", "repro_index_pages"),
    ("entries", "repro_index_entries"),
    ("segments", "repro_index_segments"),
    ("avg_leaf_occupancy", "repro_index_avg_leaf_occupancy"),
    ("overlap_area", "repro_index_overlap_area"),
    ("dead_space_ratio", "repro_index_dead_space_ratio"),
    ("duplication_factor", "repro_index_duplication_factor"),
    ("split_pressure", "repro_index_split_pressure"),
    ("avg_bucket_count", "repro_index_avg_bucket_count"),
    ("btree_height", "repro_index_btree_height"),
)


def publish_health(
    index, registry: Optional[MetricsRegistry] = None
) -> Dict[str, Any]:
    """Compute health and publish it as registry gauges; returns the report."""
    registry = registry if registry is not None else get_registry()
    report = compute_health(index)
    structure = report["structure"]
    for key, gauge_name in _SCALAR_GAUGES:
        if key in report:
            registry.gauge(gauge_name, structure=structure).set(report[key])
    for bucket, n in report.get("node_occupancy", {}).items():
        registry.gauge(
            "repro_index_node_occupancy", structure=structure, bucket=bucket
        ).set(n)
    for depth, n in report.get("block_depth", {}).items():
        registry.gauge(
            "repro_index_block_depth", structure=structure, depth=depth
        ).set(n)
    registry.counter(
        "repro_index_health_refreshes_total", structure=structure
    ).inc()
    return report
