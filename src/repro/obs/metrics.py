"""Process-wide named counters, latency histograms, and the slow-query log.

The per-session :class:`~repro.storage.counters.MetricsCounters` answer
"how much storage work did this client cause"; this module answers "how
is the *service* doing" -- request rates, latency distributions, and the
individual queries slow enough to need looking at.

Histograms use **fixed log-scale buckets**: powers of two from 1 us to
~8.4 s (25 buckets plus overflow). Fixed buckets make observation O(1)
with no allocation (an index increment into a pre-sized list), make
concurrent merging trivial, and render directly as a Prometheus
cumulative histogram. The price is ~2x bucket-width error on quantile
estimates, which is exactly the trade Prometheus itself makes.

Everything here is thread-safe; the registry is process-wide via
:func:`get_registry` (the same singleton pattern as
:data:`repro.obs.trace.TRACER`), so the engine, server, CLI, and tests
all read one store of truth. Tests that need isolation construct their
own :class:`MetricsRegistry` or call :meth:`MetricsRegistry.reset`.
"""

from __future__ import annotations

import threading
from collections import deque
from typing import Any, Dict, List, Optional, Tuple

from repro.metric_names import COUNTER_FIELDS
from repro.obs.clock import wall_now_us
from repro.sanitize import make_lock

#: The MetricsCounters field names, re-exported so metrics consumers can
#: iterate the paper counters without importing the storage layer (and so
#: this module and repro.storage.counters share one source of truth).
PAPER_COUNTER_FIELDS = COUNTER_FIELDS

#: Histogram bucket upper bounds in seconds: 2**i microseconds.
BUCKET_BOUNDS: Tuple[float, ...] = tuple((1 << i) * 1e-6 for i in range(25))

#: Index of the +Inf (overflow) slot in a histogram's ``counts`` list.
_OVERFLOW_SLOT = len(BUCKET_BOUNDS)


class Counter:
    """A monotonically increasing named counter."""

    __slots__ = ("name", "labels", "_value", "_lock")

    def __init__(self, name: str, labels: Tuple[Tuple[str, str], ...] = ()) -> None:
        self.name = name
        self.labels = labels
        self._value = 0
        # Leaf lock on the request hot path: never held while acquiring
        # another lock, so it stays a raw threading.Lock instead of a
        # sanitizer-tracked one (no ordering edges to learn from it).
        self._lock = threading.Lock()

    def inc(self, n: int = 1) -> None:
        with self._lock:
            self._value += n

    def advance_to(self, value: int) -> None:
        """Raise the counter to ``value`` if that is an increase.

        For counters mirroring a tally kept elsewhere (e.g. the result
        cache's own hit/miss counts): synced at export time instead of
        paying a second lock on every request. Monotonicity is enforced
        here, so a stale sync can never move the counter backwards.
        """
        with self._lock:
            if value > self._value:
                self._value = value

    @property
    def value(self) -> int:
        return self._value


class Gauge:
    """A named value that can move in either direction.

    Used for the structural health telemetry (occupancy, overlap, depth
    distributions) and the ``repro_build_info`` info-gauge: quantities
    that are *states*, not accumulations, so a Counter's monotonicity
    would be wrong for them.
    """

    __slots__ = ("name", "labels", "_value", "_lock")

    def __init__(self, name: str, labels: Tuple[Tuple[str, str], ...] = ()) -> None:
        self.name = name
        self.labels = labels
        self._value = 0.0
        self._lock = threading.Lock()  # leaf lock, never nested (see Counter)

    def set(self, value: float) -> None:
        with self._lock:
            self._value = float(value)

    def inc(self, n: float = 1.0) -> None:
        with self._lock:
            self._value += n

    @property
    def value(self) -> float:
        return self._value


class LatencyHistogram:
    """Fixed log-2 buckets over seconds, Prometheus-renderable.

    ``counts[i]`` holds observations with ``value <= BUCKET_BOUNDS[i]``
    (non-cumulative internally; rendering accumulates). The final slot
    ``counts[-1]`` is the overflow (+Inf) bucket.
    """

    __slots__ = ("name", "labels", "counts", "total", "sum_seconds", "_lock")

    def __init__(self, name: str, labels: Tuple[Tuple[str, str], ...] = ()) -> None:
        self.name = name
        self.labels = labels
        self.counts = [0] * (len(BUCKET_BOUNDS) + 1)
        self.total = 0
        self.sum_seconds = 0.0
        self._lock = threading.Lock()  # leaf lock, never nested (see Counter)

    def observe(self, seconds: float) -> None:
        idx = self._bucket_index(seconds)
        with self._lock:
            self.counts[idx] += 1
            self.total += 1
            self.sum_seconds += seconds

    def observe_and_count(self, seconds: float, counter: "Counter") -> None:
        """Observe and bump ``counter`` in a single critical section.

        The hot-path fusion for the engine's (latency histogram, ok
        counter) pair: one lock cycle instead of two per request. Safe
        only while every writer of ``counter`` goes through this method
        -- the engine's per-op ok counters do.
        """
        # _bucket_index, inlined: this runs on every request.
        if seconds <= 1e-6:
            idx = 0
        else:
            micros = seconds * 1e6
            whole = int(micros)
            if whole < micros:
                whole += 1
            idx = (whole - 1).bit_length()
            if idx > _OVERFLOW_SLOT:
                idx = _OVERFLOW_SLOT
        with self._lock:
            self.counts[idx] += 1
            self.total += 1
            self.sum_seconds += seconds
            counter._value += 1

    @staticmethod
    def _bucket_index(seconds: float) -> int:
        # Loop-free: the bucket is ceil(log2(micros)), via int.bit_length.
        # Observation is on every request's path, so this must stay cheap.
        if seconds <= 1e-6:
            return 0
        micros = seconds * 1e6
        whole = int(micros)
        if whole < micros:
            whole += 1  # ceil: 2.5us belongs in the (2, 4] bucket
        idx = (whole - 1).bit_length()
        if idx >= len(BUCKET_BOUNDS):
            return len(BUCKET_BOUNDS)  # overflow slot
        return idx

    def percentile(self, q: float) -> float:
        """Upper bound of the bucket holding the ``q``-quantile (0..1)."""
        if not 0.0 <= q <= 1.0:
            raise ValueError(f"q must be in [0, 1], got {q}")
        with self._lock:
            total = self.total
            counts = list(self.counts)
        if total == 0:
            return 0.0
        rank = max(1, int(q * total + 0.999999))
        seen = 0
        for i, c in enumerate(counts):
            seen += c
            if seen >= rank:
                if i < len(BUCKET_BOUNDS):
                    return BUCKET_BOUNDS[i]
                return float("inf")
        return float("inf")

    def raw(self) -> Tuple[List[int], int, float]:
        """A consistent (bucket counts, total, sum) triple for rendering."""
        with self._lock:
            return list(self.counts), self.total, self.sum_seconds

    def snapshot(self) -> Dict[str, Any]:
        with self._lock:
            return {
                "count": self.total,
                "sum_seconds": self.sum_seconds,
                "buckets": {
                    f"{bound:.6f}": count
                    for bound, count in zip(BUCKET_BOUNDS, self.counts)
                },
                "overflow": self.counts[-1],
            }


class SlowQueryLog:
    """A bounded log of queries slower than a configurable threshold."""

    def __init__(self, threshold_ms: Optional[float] = None, capacity: int = 64) -> None:
        if capacity < 1:
            raise ValueError(f"capacity must be >= 1, got {capacity}")
        self.threshold_ms = threshold_ms
        self.capacity = capacity
        self.recorded = 0
        self._entries: "deque[Dict[str, Any]]" = deque(maxlen=capacity)
        self._lock = make_lock("obs.slow_query_log")

    @property
    def enabled(self) -> bool:
        return self.threshold_ms is not None

    def record(self, op: str, elapsed_seconds: float, attrs: Dict[str, Any]) -> bool:
        """Log the query if it breached the threshold; returns whether."""
        if self.threshold_ms is None:
            return False
        ms = elapsed_seconds * 1e3
        if ms < self.threshold_ms:
            return False
        entry = {
            "op": op,
            "ms": round(ms, 3),
            "attrs": attrs,
            # Anchored wall clock (monotonic offset from one wall reading
            # at import): a wall step cannot reorder or time-travel the
            # log the way raw time.time() could.
            "unix_time": wall_now_us() / 1e6,
        }
        with self._lock:
            self._entries.append(entry)
            self.recorded += 1
        return True

    def entries(self) -> List[Dict[str, Any]]:
        with self._lock:
            return list(self._entries)

    def stats(self) -> Dict[str, Any]:
        with self._lock:
            entries = list(self._entries)
        return {
            "threshold_ms": self.threshold_ms,
            "capacity": self.capacity,
            "recorded": self.recorded,
            "buffered": len(entries),
            # The log lines themselves ride along (bounded by capacity);
            # the shard router annotates each with its originating shard.
            "entries": entries,
        }


def _label_key(labels: Dict[str, str]) -> Tuple[Tuple[str, str], ...]:
    return tuple(sorted(labels.items()))


class MetricsRegistry:
    """All named counters and histograms of one process, in one place.

    Metric names follow Prometheus conventions (``repro_queries_total``,
    ``repro_op_latency_seconds``); labels are passed as keyword
    arguments and become Prometheus label sets. Fetching is
    get-or-create, so call sites never pre-register.
    """

    def __init__(self) -> None:
        self._counters: Dict[Tuple[str, Tuple[Tuple[str, str], ...]], Counter] = {}
        self._gauges: Dict[Tuple[str, Tuple[Tuple[str, str], ...]], Gauge] = {}
        self._histograms: Dict[
            Tuple[str, Tuple[Tuple[str, str], ...]], LatencyHistogram
        ] = {}
        self._lock = make_lock("obs.metrics_registry")

    def counter(self, name: str, **labels: str) -> Counter:
        key = (name, _label_key(labels))
        counter = self._counters.get(key)
        if counter is None:
            with self._lock:
                counter = self._counters.setdefault(key, Counter(name, key[1]))
        return counter

    def gauge(self, name: str, **labels: str) -> Gauge:
        key = (name, _label_key(labels))
        gauge = self._gauges.get(key)
        if gauge is None:
            with self._lock:
                gauge = self._gauges.setdefault(key, Gauge(name, key[1]))
        return gauge

    def histogram(self, name: str, **labels: str) -> LatencyHistogram:
        key = (name, _label_key(labels))
        hist = self._histograms.get(key)
        if hist is None:
            with self._lock:
                hist = self._histograms.setdefault(
                    key, LatencyHistogram(name, key[1])
                )
        return hist

    def counters(self) -> List[Counter]:
        with self._lock:
            return list(self._counters.values())

    def gauges(self) -> List[Gauge]:
        with self._lock:
            return list(self._gauges.values())

    def histograms(self) -> List[LatencyHistogram]:
        with self._lock:
            return list(self._histograms.values())

    def reset(self) -> None:
        """Drop every metric (test isolation; never called in service)."""
        with self._lock:
            self._counters.clear()
            self._gauges.clear()
            self._histograms.clear()

    # ------------------------------------------------------------------
    # Export
    # ------------------------------------------------------------------
    def render_json(self) -> Dict[str, Any]:
        out: Dict[str, Any] = {"counters": [], "gauges": [], "histograms": []}
        for counter in self.counters():
            out["counters"].append(
                {
                    "name": counter.name,
                    "labels": dict(counter.labels),
                    "value": counter.value,
                }
            )
        for gauge in self.gauges():
            out["gauges"].append(
                {
                    "name": gauge.name,
                    "labels": dict(gauge.labels),
                    "value": gauge.value,
                }
            )
        for hist in self.histograms():
            entry = {"name": hist.name, "labels": dict(hist.labels)}
            entry.update(hist.snapshot())
            out["histograms"].append(entry)
        return out

    def render_prom(self) -> str:
        from repro.obs.prom import render_prom

        return render_prom(self)


_REGISTRY = MetricsRegistry()


def get_registry() -> MetricsRegistry:
    """The process-wide registry (engine, server, CLI all share it)."""
    return _REGISTRY
