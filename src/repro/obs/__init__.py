"""Observability: structured tracing, latency histograms, metrics export.

The paper's contribution is *measurement* -- disk accesses, segment
comparisons, bounding-box tests per structure -- and the service layer
already aggregates those per session. This package answers the question
the aggregates cannot: **what is slow, and why, per query**.

* :mod:`repro.obs.trace` -- :class:`Tracer`: per-query span trees
  (``traverse`` -> page fetch/miss -> segment-table read, WAL append ->
  fsync, cache hit/miss) captured into a bounded ring buffer. Disabled
  tracing is a single attribute check on the hot path -- no allocation,
  no thread-local lookup.
* :mod:`repro.obs.metrics` -- :class:`MetricsRegistry`: process-wide
  named counters and fixed-bucket log-scale latency histograms, plus the
  slow-query log.
* :mod:`repro.obs.prom` -- Prometheus text exposition rendering and a
  small parser used by the tests and the CI smoke job to prove the
  output is valid.
* :mod:`repro.obs.dtrace` -- distributed trace context (trace id, span
  id, sampled flag) carried across process boundaries on both wire
  protocols, plus the thread-local server <-> engine handoff slots.
* :mod:`repro.obs.clock` -- the per-process monotonic clock anchor all
  span timestamps use, and the wall-clock offset exchanged at connect
  time so the router can order cross-process spans despite skew.
* :mod:`repro.obs.profile` -- :class:`SamplingProfiler`: a stdlib-only
  thread-stack sampler that attributes samples to the op executing on
  each thread and exports collapsed (flamegraph) stacks; the router
  merges per-shard profiles into one.

Wire-up: :meth:`repro.service.engine.QueryEngine.execute` opens one
trace and one histogram observation per request (every op -- point,
window, nearest, batch, insert, delete, checkpoint, stats, check --
identically); the storage and WAL layers emit events into whatever trace
is active on their thread. The server exposes ``{"op": "trace"}`` and
``{"op": "metrics"}``; the CLI adds ``python -m repro stats --format
prom|json``.
"""

from repro.obs.buildinfo import git_sha, publish_build_info
from repro.obs.clock import clock_info, now_us, wall_now_us
from repro.obs.dtrace import TraceContext
from repro.obs.explain import ExplainProfile, format_explain, merge_attributed
from repro.obs.health import compute_health, publish_health
from repro.obs.metrics import (
    Counter,
    Gauge,
    LatencyHistogram,
    MetricsRegistry,
    SlowQueryLog,
    get_registry,
)
from repro.obs.profile import PROFILER, SamplingProfiler, collapsed_text, merge_profiles
from repro.obs.prom import parse_prom_text, render_prom
from repro.obs.trace import TRACER, Tracer, trace_event, trace_span

__all__ = [
    "Counter",
    "ExplainProfile",
    "Gauge",
    "LatencyHistogram",
    "MetricsRegistry",
    "PROFILER",
    "SamplingProfiler",
    "SlowQueryLog",
    "TRACER",
    "TraceContext",
    "Tracer",
    "clock_info",
    "collapsed_text",
    "merge_profiles",
    "now_us",
    "wall_now_us",
    "compute_health",
    "format_explain",
    "get_registry",
    "git_sha",
    "merge_attributed",
    "parse_prom_text",
    "publish_build_info",
    "publish_health",
    "render_prom",
    "trace_event",
    "trace_span",
]
