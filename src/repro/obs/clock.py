"""Monotonic span clock with a single per-process wall-clock anchor.

Span timestamps must satisfy two properties that no single stdlib clock
gives us:

1. **Durations never go negative.** ``time.time()`` steps under NTP
   adjustment; a span that opened before a backwards step and closed
   after it would report a negative duration. Everything here derives
   from ``time.monotonic_ns``, which is immune.
2. **Cross-process trees order correctly.** Monotonic clocks have an
   arbitrary per-process origin, so worker spans cannot be placed on the
   router's timeline from monotonic readings alone. Each process
   therefore captures ONE wall-clock anchor at import time and reports
   wall times as ``anchor + monotonic_delta`` -- a fixed affine map. Two
   processes then differ by a single constant (their anchor skew), which
   the router measures once per connection with a ``clock`` round trip
   and subtracts when stitching.

All figures are integer microseconds: small enough to stay exact in a
double when JSON round-trips them, fine enough for span work.
"""

from __future__ import annotations

import time

#: The process's fixed clock anchor, captured once at import: the pair
#: (monotonic origin, wall time at that origin). Never updated -- a
#: moving anchor would reintroduce exactly the NTP-step hazard this
#: module exists to remove.
_MONO0_NS = time.monotonic_ns()
_WALL0_US = int(time.time() * 1e6)


def now_us() -> int:
    """Microseconds since the process anchor (monotonic, never steps)."""
    return (time.monotonic_ns() - _MONO0_NS) // 1000


def wall_now_us() -> int:
    """Anchored wall-clock microseconds: ``anchor + monotonic_delta``.

    Tracks real time at the anchor's accuracy but inherits the monotonic
    clock's immunity to steps -- two calls never order backwards.
    """
    return _WALL0_US + now_us()


def anchor_wall_us() -> int:
    """The process's wall-clock anchor (for the ``clock`` wire op)."""
    return _WALL0_US


def clock_info() -> dict:
    """The ``{"op": "clock"}`` response: this process's clock identity.

    A client halves the round-trip and compares ``wall_us`` against its
    own midpoint reading to estimate the anchor skew it must subtract
    when placing this process's spans on its timeline.
    """
    import os

    return {
        "wall_us": wall_now_us(),
        "mono_us": now_us(),
        "anchor_us": _WALL0_US,
        "pid": os.getpid(),
    }
