"""Prometheus text exposition: rendering, and a parser to prove it.

:func:`render_prom` turns a :class:`~repro.obs.metrics.MetricsRegistry`
into the `text exposition format
<https://prometheus.io/docs/instrumenting/exposition_formats/>`_ (0.0.4):
``# HELP`` / ``# TYPE`` headers, counters as a single sample, histograms
as cumulative ``_bucket{le=...}`` series plus ``_sum`` and ``_count``.

:func:`parse_prom_text` is a deliberately strict reader of that same
format, used by the unit tests and the CI ``observability-smoke`` job to
assert the server's export actually parses -- the exporter and its proof
live together so they cannot drift apart.
"""

from __future__ import annotations

import math
import re
from typing import Dict, List, Tuple

_NAME_RE = re.compile(r"[a-zA-Z_:][a-zA-Z0-9_:]*$")
_SAMPLE_RE = re.compile(
    r"^(?P<name>[a-zA-Z_:][a-zA-Z0-9_:]*)"
    r"(?:\{(?P<labels>[^}]*)\})?"
    r"\s+(?P<value>[^ ]+)\s*$"
)
_LABEL_RE = re.compile(r'([a-zA-Z_][a-zA-Z0-9_]*)="((?:[^"\\]|\\.)*)"')

#: One-line help strings for the metric families this project exports.
HELP_TEXT = {
    "repro_queries_total": "Requests dispatched through QueryEngine.execute, by op and status.",
    "repro_cache_events_total": "Result-cache lookups by outcome (hit/miss).",
    "repro_slow_queries_total": "Queries that breached the slow-query threshold.",
    "repro_traces_total": "Traces captured by the tracer.",
    "repro_trace_dropped_total": "Finished traces evicted from the tracer's ring buffer.",
    "repro_trace_tail_discarded_total": "Trace skeletons discarded by the tail-sampling policy (fast, clean, unsampled).",
    "repro_trace_buffered": "Finished traces currently held in the tracer's ring buffer.",
    "repro_op_latency_seconds": "End-to-end latency of QueryEngine.execute, by op.",
    "repro_build_info": "Constant 1; build metadata in the labels (version, git_sha, page_size, grid_bits).",
    "repro_index_height": "Height of the served index (levels, root included).",
    "repro_index_pages": "Pages occupied by the served index.",
    "repro_index_entries": "Index entries (leaf tuples / q-edges); exceeds segments under duplication.",
    "repro_index_segments": "Distinct segments stored in the served index.",
    "repro_index_avg_leaf_occupancy": "Mean leaf fill fraction (entries / capacity) over all leaves.",
    "repro_index_node_occupancy": "Node count per fill-fraction bucket (trees).",
    "repro_index_overlap_area": "Total pairwise overlap area of sibling directory rectangles.",
    "repro_index_dead_space_ratio": "Fraction of leaf MBR area not covered by entry MBRs.",
    "repro_index_duplication_factor": "Entries per distinct segment (R+ tiling / PMR q-edge duplication).",
    "repro_index_block_depth": "Leaf-block count per decomposition depth (PMR).",
    "repro_index_split_pressure": "Fraction of splittable leaf blocks at or above the split threshold (PMR).",
    "repro_index_avg_bucket_count": "Mean q-edges per non-empty leaf bucket (PMR).",
    "repro_index_btree_height": "Height of the locational-code B-tree (PMR).",
    "repro_index_health_refreshes_total": "Structural health recomputations, by kind.",
    "repro_router_requests_total": "Requests served by the shard router, by op and status.",
    "repro_router_shards": "Shard workers the router currently fans out to.",
    "repro_router_epoch": "Shard-map epoch the router last loaded.",
}


def _escape_label_value(value: str) -> str:
    return value.replace("\\", "\\\\").replace('"', '\\"').replace("\n", "\\n")


def _format_labels(labels: Tuple[Tuple[str, str], ...], extra: str = "") -> str:
    parts = [f'{k}="{_escape_label_value(str(v))}"' for k, v in labels]
    if extra:
        parts.append(extra)
    return "{" + ",".join(parts) + "}" if parts else ""


def _format_value(value: float) -> str:
    if value != value:  # NaN
        return "NaN"
    if math.isinf(value):
        return "+Inf" if value > 0 else "-Inf"
    if isinstance(value, int) or float(value).is_integer():
        return str(int(value))
    return repr(float(value))


def render_prom(registry) -> str:
    """Render every metric in ``registry`` as Prometheus text."""
    from repro.obs.metrics import BUCKET_BOUNDS

    lines: List[str] = []
    seen_headers = set()

    def header(name: str, kind: str) -> None:
        if name in seen_headers:
            return
        seen_headers.add(name)
        help_text = HELP_TEXT.get(name, f"{name} (no help registered)")
        lines.append(f"# HELP {name} {help_text}")
        lines.append(f"# TYPE {name} {kind}")

    for counter in sorted(registry.counters(), key=lambda c: (c.name, c.labels)):
        header(counter.name, "counter")
        lines.append(
            f"{counter.name}{_format_labels(counter.labels)} {counter.value}"
        )
    for gauge in sorted(registry.gauges(), key=lambda g: (g.name, g.labels)):
        header(gauge.name, "gauge")
        lines.append(
            f"{gauge.name}{_format_labels(gauge.labels)} "
            f"{_format_value(gauge.value)}"
        )
    for hist in sorted(registry.histograms(), key=lambda h: (h.name, h.labels)):
        header(hist.name, "histogram")
        counts, total, sum_seconds = hist.raw()
        cumulative = 0
        for bound, count in zip(BUCKET_BOUNDS, counts):
            cumulative += count
            le_label = 'le="%s"' % _format_value(bound)
            lines.append(
                f"{hist.name}_bucket"
                f"{_format_labels(hist.labels, le_label)} {cumulative}"
            )
        cumulative += counts[-1]
        inf_label = 'le="+Inf"'
        lines.append(
            f"{hist.name}_bucket"
            f"{_format_labels(hist.labels, inf_label)} {cumulative}"
        )
        lines.append(
            f"{hist.name}_sum{_format_labels(hist.labels)} "
            f"{_format_value(sum_seconds)}"
        )
        lines.append(
            f"{hist.name}_count{_format_labels(hist.labels)} {total}"
        )
    return "\n".join(lines) + "\n" if lines else ""


def merge_prom_texts(texts: Dict[str, str]) -> str:
    """Merge several Prometheus expositions into one, labelled by shard.

    ``texts`` maps a shard id to that worker's text exposition (the
    router scrapes each shard's ``metrics`` op). Every sample is
    re-emitted with a ``shard="<id>"`` label added, families are
    deduplicated to one ``# HELP`` / ``# TYPE`` header each, and the
    result is itself valid exposition (:func:`parse_prom_text` accepts
    it -- each input is parsed, so a malformed shard export fails here,
    not at the scraper). Histograms stay correct because the shard label
    keeps each worker's bucket series distinct.
    """
    parsed = {shard: parse_prom_text(text) for shard, text in texts.items()}
    families: Dict[str, Dict] = {}
    for shard in sorted(parsed):
        for name, family in parsed[shard].items():
            merged = families.setdefault(
                name,
                {"type": family["type"], "help": family["help"], "rows": []},
            )
            for sample_name, labels, value in family["samples"]:
                if labels.get("shard") not in (None, shard):
                    raise ValueError(
                        f"{name}: sample already labelled "
                        f"shard={labels['shard']!r}, cannot relabel for "
                        f"{shard!r}"
                    )
                labelled = dict(labels)
                labelled["shard"] = shard
                merged["rows"].append((sample_name, labelled, value))
    lines: List[str] = []
    for name in sorted(families):
        family = families[name]
        if family["help"] is not None:
            lines.append(f"# HELP {name} {family['help']}")
        lines.append(f"# TYPE {name} {family['type']}")
        for sample_name, labels, value in family["rows"]:
            # ``le`` must stay last-ish is not required by the format;
            # sorted label order keeps output deterministic.
            label_pairs = tuple(sorted(labels.items()))
            lines.append(
                f"{sample_name}{_format_labels(label_pairs)} "
                f"{_format_value(value)}"
            )
    return "\n".join(lines) + "\n" if lines else ""


def parse_prom_text(text: str) -> Dict[str, Dict]:
    """Parse Prometheus text exposition, strictly.

    Returns ``{family_name: {"type": ..., "help": ..., "samples":
    [(sample_name, labels_dict, value), ...]}}``. Raises ``ValueError``
    on anything malformed: an unknown sample family, a ``# TYPE`` after
    samples of that family, a histogram whose ``_bucket`` series is not
    cumulative or whose ``+Inf`` bucket disagrees with ``_count``.
    """
    families: Dict[str, Dict] = {}
    for lineno, line in enumerate(text.splitlines(), start=1):
        if not line.strip():
            continue
        if line.startswith("# HELP ") or line.startswith("# TYPE "):
            _, kind, rest = line.split(" ", 2)
            name, _, payload = rest.partition(" ")
            if not _NAME_RE.match(name):
                raise ValueError(f"line {lineno}: bad metric name {name!r}")
            family = families.setdefault(
                name, {"type": None, "help": None, "samples": []}
            )
            if kind == "TYPE":
                if family["samples"]:
                    raise ValueError(
                        f"line {lineno}: TYPE for {name} after its samples"
                    )
                family["type"] = payload
            else:
                family["help"] = payload
            continue
        if line.startswith("#"):
            continue  # comment
        m = _SAMPLE_RE.match(line)
        if m is None:
            raise ValueError(f"line {lineno}: unparseable sample {line!r}")
        sample_name = m.group("name")
        base = re.sub(r"_(bucket|sum|count)$", "", sample_name)
        family = families.get(base) or families.get(sample_name)
        if family is None:
            raise ValueError(
                f"line {lineno}: sample {sample_name!r} has no # TYPE header"
            )
        labels: Dict[str, str] = {}
        if m.group("labels"):
            consumed = 0
            for lm in _LABEL_RE.finditer(m.group("labels")):
                labels[lm.group(1)] = lm.group(2)
                consumed += 1
            if consumed == 0:
                raise ValueError(f"line {lineno}: bad labels in {line!r}")
        raw = m.group("value")
        value = float("inf") if raw == "+Inf" else float(raw)
        family["samples"].append((sample_name, labels, value))
    _validate_histograms(families)
    return families


def _validate_histograms(families: Dict[str, Dict]) -> None:
    for name, family in families.items():
        if family["type"] != "histogram":
            continue
        series: Dict[Tuple[Tuple[str, str], ...], List[Tuple[float, float]]] = {}
        counts: Dict[Tuple[Tuple[str, str], ...], float] = {}
        for sample_name, labels, value in family["samples"]:
            key = tuple(sorted((k, v) for k, v in labels.items() if k != "le"))
            if sample_name == f"{name}_bucket":
                le = labels.get("le")
                if le is None:
                    raise ValueError(f"{name}: bucket sample without le label")
                bound = float("inf") if le == "+Inf" else float(le)
                series.setdefault(key, []).append((bound, value))
            elif sample_name == f"{name}_count":
                counts[key] = value
        for key, buckets in series.items():
            ordered = sorted(buckets)
            values = [v for _, v in ordered]
            if values != sorted(values):
                raise ValueError(f"{name}: bucket counts are not cumulative")
            if ordered[-1][0] != float("inf"):
                raise ValueError(f"{name}: histogram lacks a +Inf bucket")
            if key in counts and counts[key] != ordered[-1][1]:
                raise ValueError(
                    f"{name}: +Inf bucket {ordered[-1][1]} != _count {counts[key]}"
                )
