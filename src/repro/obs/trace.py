"""Per-query trace spans, captured into a bounded ring buffer.

A *trace* is one span tree for one engine request: a root span named
after the op, child spans for the phases the engine distinguishes
(``traverse``, ``apply``, ``commit``), and zero-duration *events* for
the storage traffic underneath (``page_fetch``, ``segment_read``,
``wal_append``, ``wal_fsync``, ``cache_hit``, ``cache_miss``).

Design constraints, in priority order:

1. **Disabled tracing must cost (almost) nothing.** Every hook in the
   storage and WAL layers is guarded by ``if TRACER.enabled:`` -- one
   attribute load and one branch, no allocation, no thread-local access.
   ``bench-serve`` with tracing off must stay within ~5% of the
   pre-instrumentation baseline.
2. **Traces are bounded.** Finished traces land in a ring buffer
   (``capacity`` traces); within a trace, at most ``max_events`` child
   records are kept and the rest are counted in ``dropped`` -- a window
   query over a million segments cannot balloon a trace.
3. **Threads do not interleave.** The active span stack is
   thread-local, so K server threads tracing concurrently each build
   their own tree; only the finished-trace ring is shared (under a
   lock).

The module-level :data:`TRACER` is the process-wide instance every
layer emits into -- the same singleton pattern as the process-wide
:func:`repro.obs.metrics.get_registry`, and consistent with it.
"""

from __future__ import annotations

import threading
import time
from collections import deque
from typing import Any, Dict, List, Optional

from repro.sanitize import make_lock


class _SpanHandle:
    """Context manager for one open span (internal; reuse via Tracer)."""

    __slots__ = ("_tracer", "_record")

    def __init__(self, tracer: "Tracer", record: Optional[Dict[str, Any]]) -> None:
        self._tracer = tracer
        self._record = record

    def __enter__(self) -> "_SpanHandle":
        return self

    def __exit__(self, *exc) -> None:
        if self._record is not None:
            self._tracer._close_span(self._record)

    def set_error(self, message: str) -> None:
        """Mark the span failed (no-op on the disabled handle)."""
        if self._record is not None:
            self._record["error"] = message


#: The shared do-nothing handle served when tracing is off or no trace is
#: active on this thread: entering/exiting it allocates nothing.
_NOOP = _SpanHandle.__new__(_SpanHandle)
_NOOP._tracer = None  # type: ignore[assignment]
_NOOP._record = None


class Tracer:
    """Build span trees per thread; keep the last ``capacity`` of them.

    A span record is a plain dict (JSON-ready for the server's
    ``{"op": "trace"}``)::

        {"name": "window", "start_us": 12.3, "dur_us": 840.1,
         "attrs": {...}, "spans": [...], "events": 37, "dropped": 0}

    ``events`` counts every child record *attempted*; ``dropped`` the
    subset discarded once ``max_events`` was reached.
    """

    def __init__(self, capacity: int = 64, max_events: int = 512) -> None:
        if capacity < 1:
            raise ValueError(f"capacity must be >= 1, got {capacity}")
        if max_events < 1:
            raise ValueError(f"max_events must be >= 1, got {max_events}")
        self.enabled = False
        self.capacity = capacity
        self.max_events = max_events
        self.started = 0
        self.finished = 0
        #: Finished traces pushed out of the ring by newer ones: the
        #: observer's own saturation, mirrored into the registry as
        #: ``repro_trace_dropped_total`` at export time.
        self.evicted = 0
        #: Count of threads with an EXPLAIN profile attached. Checked as
        #: ``if TRACER.profiling:`` on query entry -- one attribute load,
        #: like ``enabled`` -- so the plain path never touches the
        #: thread-local.
        self.profiling = 0
        self._ring: "deque[Dict[str, Any]]" = deque(maxlen=capacity)
        self._ring_lock = make_lock("obs.trace.ring")
        self._profiling_lock = make_lock("obs.trace.profiling")
        self._local = threading.local()

    # ------------------------------------------------------------------
    # Configuration
    # ------------------------------------------------------------------
    def enable(
        self, capacity: Optional[int] = None, max_events: Optional[int] = None
    ) -> None:
        """Turn tracing on (optionally resizing the ring buffer)."""
        if capacity is not None and capacity != self.capacity:
            if capacity < 1:
                raise ValueError(f"capacity must be >= 1, got {capacity}")
            self.capacity = capacity
            with self._ring_lock:
                self._ring = deque(self._ring, maxlen=capacity)
        if max_events is not None:
            if max_events < 1:
                raise ValueError(f"max_events must be >= 1, got {max_events}")
            self.max_events = max_events
        self.enabled = True  # repro-lint: disable=CC03 -- benign single-writer flag: hooks read it lock-free by design (constraint 1); a stale read means one skipped trace, never corruption

    def disable(self) -> None:
        self.enabled = False  # repro-lint: disable=CC03 -- benign single-writer flag: see enable(); readers tolerate staleness

    def clear(self) -> None:
        """Drop every finished trace (the stats counters are kept)."""
        with self._ring_lock:
            self._ring.clear()

    # ------------------------------------------------------------------
    # Trace lifecycle (called by the engine's dispatch point)
    # ------------------------------------------------------------------
    def start_trace(self, op: str, **attrs: Any) -> Optional[Dict[str, Any]]:
        """Open a root span for this thread; returns None when disabled.

        The engine calls this once per request and MUST pair it with
        :meth:`finish_trace` (or :meth:`abort_trace`) in a finally block.
        """
        if not self.enabled:
            return None
        root: Dict[str, Any] = {
            "name": op,
            "start_us": 0.0,
            "dur_us": 0.0,
            "attrs": attrs,
            "spans": [],
            "events": 0,
            "dropped": 0,
            "_t0": time.perf_counter(),
        }
        self._local.stack = [root]
        with self._ring_lock:  # exact under concurrency, like finished/evicted
            self.started += 1
        return root

    def active(self) -> bool:
        """Is a trace open on the calling thread?

        The engine uses this to nest: an op executed *inside* another
        traced op (a batch's sub-requests) becomes a child span of the
        enclosing trace instead of clobbering it.
        """
        return bool(getattr(self._local, "stack", None))

    def finish_trace(
        self, root: Dict[str, Any], error: Optional[str] = None
    ) -> Dict[str, Any]:
        """Close the root span and publish the trace to the ring."""
        root["dur_us"] = (time.perf_counter() - root.pop("_t0")) * 1e6
        if error is not None:
            root["error"] = error
        self._local.stack = None
        with self._ring_lock:
            if len(self._ring) == self.capacity:
                self.evicted += 1  # the append below displaces the oldest
            self._ring.append(root)
            self.finished += 1
        return root

    def abort_trace(self, root: Dict[str, Any]) -> None:
        """Drop an open trace without publishing it (engine teardown)."""
        root.pop("_t0", None)
        self._local.stack = None

    # ------------------------------------------------------------------
    # Spans and events (called from any layer, any thread)
    # ------------------------------------------------------------------
    def span(self, name: str, **attrs: Any) -> _SpanHandle:
        """A child span of whatever is open on this thread.

        With tracing disabled -- or on a thread with no active trace --
        this returns a shared no-op handle: nothing is allocated.
        """
        if not self.enabled:
            return _NOOP
        stack = getattr(self._local, "stack", None)
        if not stack:
            return _NOOP
        root = stack[0]
        root["events"] += 1
        if root["events"] > self.max_events:
            root["dropped"] += 1
            return _NOOP
        parent = stack[-1]
        record: Dict[str, Any] = {
            "name": name,
            "start_us": (time.perf_counter() - root["_t0"]) * 1e6,
            "dur_us": 0.0,
            "spans": [],
            "_t0": time.perf_counter(),
        }
        if attrs:
            record["attrs"] = attrs
        parent["spans"].append(record)
        stack.append(record)
        return _SpanHandle(self, record)

    def _close_span(self, record: Dict[str, Any]) -> None:
        record["dur_us"] = (time.perf_counter() - record.pop("_t0")) * 1e6
        stack = getattr(self._local, "stack", None)
        if stack and stack[-1] is record:
            stack.pop()

    def event(self, name: str, **attrs: Any) -> None:
        """A zero-duration child record (a point in time, not a range)."""
        if not self.enabled:
            return
        stack = getattr(self._local, "stack", None)
        if not stack:
            return
        root = stack[0]
        root["events"] += 1
        if root["events"] > self.max_events:
            root["dropped"] += 1
            return
        record: Dict[str, Any] = {
            "name": name,
            "start_us": (time.perf_counter() - root["_t0"]) * 1e6,
        }
        if attrs:
            record["attrs"] = attrs
        stack[-1]["spans"].append(record)

    # ------------------------------------------------------------------
    # EXPLAIN profiles (thread-local attribution sinks)
    # ------------------------------------------------------------------
    def attach_profile(self, profile: Any) -> None:
        """Attach an EXPLAIN profile to the calling thread.

        Core traversal call sites fetch it with :meth:`current_profile`
        (guarded by the ``profiling`` fast-path flag) and charge their
        per-level work into it -- the span context carries the profile,
        so attribution needs no new globals and threads cannot mix
        profiles. Must be paired with :meth:`detach_profile` in a
        ``finally`` block.
        """
        self._local.profile = profile
        with self._profiling_lock:
            self.profiling += 1

    def detach_profile(self) -> None:
        self._local.profile = None
        with self._profiling_lock:
            self.profiling -= 1

    def current_profile(self) -> Any:
        """The profile attached to this thread, or None."""
        return getattr(self._local, "profile", None)

    # ------------------------------------------------------------------
    # Reading traces back
    # ------------------------------------------------------------------
    def recent(self, n: Optional[int] = None) -> List[Dict[str, Any]]:
        """The last ``n`` finished traces, oldest first (all by default)."""
        with self._ring_lock:
            traces = list(self._ring)
        if n is not None:
            traces = traces[-n:]
        return traces

    def stats(self) -> Dict[str, Any]:
        with self._ring_lock:
            buffered = len(self._ring)
        return {
            "enabled": self.enabled,
            "capacity": self.capacity,
            "max_events": self.max_events,
            "buffered": buffered,
            "started": self.started,
            "finished": self.finished,
            "evicted": self.evicted,
        }


#: The process-wide tracer every instrumented layer emits into.
TRACER = Tracer()


def trace_span(name: str, **attrs: Any) -> _SpanHandle:
    """Module-level shorthand for ``TRACER.span(...)``."""
    return TRACER.span(name, **attrs)


def trace_event(name: str, **attrs: Any) -> None:
    """Module-level shorthand for ``TRACER.event(...)``."""
    TRACER.event(name, **attrs)
