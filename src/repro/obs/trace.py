"""Per-query trace spans, captured into a bounded ring buffer.

A *trace* is one span tree for one engine request: a root span named
after the op, child spans for the phases the engine distinguishes
(``traverse``, ``apply``, ``commit``), and zero-duration *events* for
the storage traffic underneath (``page_fetch``, ``segment_read``,
``wal_append``, ``wal_fsync``, ``cache_hit``, ``cache_miss``).

Design constraints, in priority order:

1. **Disabled tracing must cost (almost) nothing.** Every hook in the
   storage and WAL layers is guarded by ``if TRACER.enabled:`` -- one
   attribute load and one branch, no allocation, no thread-local access.
   ``bench-serve`` with tracing off must stay within ~5% of the
   pre-instrumentation baseline.
2. **Traces are bounded.** Finished traces land in a ring buffer
   (``capacity`` traces); within a trace, at most ``max_events`` child
   records are kept and the rest are counted in ``dropped`` -- a window
   query over a million segments cannot balloon a trace.
3. **Threads do not interleave.** The active span stack is
   thread-local, so K server threads tracing concurrently each build
   their own tree; only the finished-trace ring is shared (under a
   lock).

The module-level :data:`TRACER` is the process-wide instance every
layer emits into -- the same singleton pattern as the process-wide
:func:`repro.obs.metrics.get_registry`, and consistent with it.
"""

from __future__ import annotations

import threading
from collections import deque
from typing import Any, Dict, List, Optional

from repro.obs import dtrace
from repro.obs.clock import now_us, wall_now_us
from repro.sanitize import make_lock


class _SpanHandle:
    """Context manager for one open span (internal; reuse via Tracer)."""

    __slots__ = ("_tracer", "_record")

    def __init__(self, tracer: "Tracer", record: Optional[Dict[str, Any]]) -> None:
        self._tracer = tracer
        self._record = record

    def __enter__(self) -> "_SpanHandle":
        return self

    def __exit__(self, *exc) -> None:
        if self._record is not None:
            self._tracer._close_span(self._record)

    def set_error(self, message: str) -> None:
        """Mark the span failed (no-op on the disabled handle)."""
        if self._record is not None:
            self._record["error"] = message

    def set_attr(self, key: str, value: Any) -> None:
        """Attach one attribute to the span (no-op on the disabled handle)."""
        if self._record is not None:
            self._record.setdefault("attrs", {})[key] = value

    @property
    def recording(self) -> bool:
        """Is this a live span (vs the shared no-op handle)? Callers use
        this to skip building expensive attribute values."""
        return self._record is not None


#: The shared do-nothing handle served when tracing is off or no trace is
#: active on this thread: entering/exiting it allocates nothing.
_NOOP = _SpanHandle.__new__(_SpanHandle)
_NOOP._tracer = None  # type: ignore[assignment]
_NOOP._record = None


class Tracer:
    """Build span trees per thread; keep the last ``capacity`` of them.

    A span record is a plain dict (JSON-ready for the server's
    ``{"op": "trace"}``)::

        {"name": "window", "start_us": 12.3, "dur_us": 840.1,
         "attrs": {...}, "spans": [...], "events": 37, "dropped": 0}

    ``events`` counts every child record *attempted*; ``dropped`` the
    subset discarded once ``max_events`` was reached.
    """

    def __init__(self, capacity: int = 64, max_events: int = 512) -> None:
        if capacity < 1:
            raise ValueError(f"capacity must be >= 1, got {capacity}")
        if max_events < 1:
            raise ValueError(f"max_events must be >= 1, got {max_events}")
        self.enabled = False
        self.capacity = capacity
        self.max_events = max_events
        #: Head-sampling rate. ``None`` (the default) is the legacy
        #: single-process mode: every trace is recorded in full and
        #: published. A float arms distributed mode: roots get
        #: trace/span ids, unsampled requests record only the root
        #: skeleton, and :meth:`finish_trace` applies the tail policy.
        self.sample_rate: Optional[float] = None
        #: Tail-retention latency threshold (microseconds): a trace at
        #: least this slow is kept even when the head decision said no.
        self.slow_us: Optional[float] = None
        self.started = 0
        self.finished = 0
        #: Skeletons dropped by the tail policy (fast, ok, unsampled).
        self.tail_discarded = 0
        #: Finished traces pushed out of the ring by newer ones: the
        #: observer's own saturation, mirrored into the registry as
        #: ``repro_trace_dropped_total`` at export time.
        self.evicted = 0
        #: Count of threads with an EXPLAIN profile attached. Checked as
        #: ``if TRACER.profiling:`` on query entry -- one attribute load,
        #: like ``enabled`` -- so the plain path never touches the
        #: thread-local.
        self.profiling = 0
        self._ring: "deque[Dict[str, Any]]" = deque(maxlen=capacity)
        self._ring_lock = make_lock("obs.trace.ring")
        self._profiling_lock = make_lock("obs.trace.profiling")
        self._local = threading.local()

    # ------------------------------------------------------------------
    # Configuration
    # ------------------------------------------------------------------
    def enable(
        self, capacity: Optional[int] = None, max_events: Optional[int] = None
    ) -> None:
        """Turn tracing on (optionally resizing the ring buffer)."""
        if capacity is not None and capacity != self.capacity:
            if capacity < 1:
                raise ValueError(f"capacity must be >= 1, got {capacity}")
            self.capacity = capacity
            with self._ring_lock:
                self._ring = deque(self._ring, maxlen=capacity)
        if max_events is not None:
            if max_events < 1:
                raise ValueError(f"max_events must be >= 1, got {max_events}")
            self.max_events = max_events
        self.enabled = True  # repro-lint: disable=CC03 -- benign single-writer flag: hooks read it lock-free by design (constraint 1); a stale read means one skipped trace, never corruption

    def arm(
        self,
        sample_rate: float,
        slow_ms: Optional[float] = None,
        capacity: Optional[int] = None,
        max_events: Optional[int] = None,
    ) -> None:
        """Enable distributed tail-based sampling (``--trace-sample``).

        Every request then gets the always-on skeleton (root span with
        ids and monotonic timing); full detail is recorded when the head
        decision (rate, or the inherited wire flag) says so, and
        retention at completion additionally keeps errored and -- when
        ``slow_ms`` is set -- slow skeletons.
        """
        if not 0.0 <= sample_rate <= 1.0:
            raise ValueError(
                f"sample_rate must be in [0, 1], got {sample_rate}"
            )
        self.sample_rate = sample_rate  # repro-lint: disable=CC03 -- benign single-writer config, same contract as `enabled`: set before serving starts; request threads read it lock-free and a stale read only shifts one request's sampling verdict
        self.slow_us = None if slow_ms is None else slow_ms * 1000.0  # repro-lint: disable=CC03 -- benign single-writer config: see sample_rate above
        self.enable(capacity=capacity, max_events=max_events)

    def disable(self) -> None:
        self.enabled = False  # repro-lint: disable=CC03 -- benign single-writer flag: see enable(); readers tolerate staleness

    def disarm(self) -> None:
        """Back to the legacy mode (and off): tests and teardown."""
        self.sample_rate = None  # repro-lint: disable=CC03 -- benign single-writer config: teardown path, see arm()
        self.slow_us = None  # repro-lint: disable=CC03 -- benign single-writer config: teardown path, see arm()
        self.disable()

    def clear(self) -> None:
        """Drop every finished trace (the stats counters are kept)."""
        with self._ring_lock:
            self._ring.clear()

    # ------------------------------------------------------------------
    # Trace lifecycle (called by the engine's dispatch point)
    # ------------------------------------------------------------------
    def start_trace(self, op: str, **attrs: Any) -> Optional[Dict[str, Any]]:
        """Open a root span for this thread; returns None when disabled.

        The engine calls this once per request and MUST pair it with
        :meth:`finish_trace` (or :meth:`abort_trace`) in a finally block.
        """
        if not self.enabled:
            return None
        root: Dict[str, Any] = {
            "name": op,
            "start_us": 0.0,
            "dur_us": 0.0,
            "attrs": attrs,
            "spans": [],
            "events": 0,
            "dropped": 0,
            "_t0": now_us(),
        }
        # Distributed identity: honour a context the server parked for
        # this thread; otherwise mint one when sampling is armed. The
        # legacy mode (sample_rate None, nothing parked) adds no keys,
        # so single-process traces look exactly as they always did.
        ctx = dtrace.take_incoming()
        if ctx is not None:
            root["trace_id"] = ctx.trace_id
            root["parent_id"] = ctx.span_id
            root["span_id"] = dtrace.new_span_id()
            root["sampled"] = ctx.sampled
            root["wall_us"] = wall_now_us()
            root["_remote"] = True
        elif self.sample_rate is not None:
            fresh = dtrace.TraceContext.new_root(self.sample_rate)
            root["trace_id"] = fresh.trace_id
            root["span_id"] = fresh.span_id
            root["sampled"] = fresh.sampled
            root["wall_us"] = wall_now_us()
        self._local.stack = [root]
        with self._ring_lock:  # exact under concurrency, like finished/evicted
            self.started += 1
        return root

    def active(self) -> bool:
        """Is a trace open on the calling thread?

        The engine uses this to nest: an op executed *inside* another
        traced op (a batch's sub-requests) becomes a child span of the
        enclosing trace instead of clobbering it.
        """
        return bool(getattr(self._local, "stack", None))

    def current_root(self) -> Optional[Dict[str, Any]]:
        """The root record of the trace open on this thread, or None.

        The router reads the root's distributed identity off this to
        mint child contexts for its fan-out without threading the record
        through every call signature.
        """
        stack = getattr(self._local, "stack", None)
        return stack[0] if stack else None

    def finish_trace(
        self, root: Dict[str, Any], error: Optional[str] = None
    ) -> Dict[str, Any]:
        """Close the root span and apply the tail-retention policy.

        Legacy roots (no ``sampled`` key) always publish. Distributed
        roots publish when head-sampled, errored, or -- with a
        ``slow_us`` threshold armed -- slow; fast clean unsampled
        skeletons are counted in ``tail_discarded`` and dropped. Either
        way the response attachment (ids, plus the local span subtree
        for sampled remote requests) is parked for the server layer.
        """
        root["dur_us"] = now_us() - root.pop("_t0")
        if error is not None:
            root["error"] = error
        self._local.stack = None
        remote = root.pop("_remote", False)
        sampled = root.get("sampled")
        if sampled is None:  # legacy single-process mode
            self.publish(root)
            return root
        keep = sampled or error is not None
        if (
            not keep
            and self.slow_us is not None
            and root["dur_us"] >= self.slow_us
        ):
            keep = True
            root["retained"] = "slow"
        if keep:
            self.publish(root)
        else:
            with self._ring_lock:
                self.finished += 1
                self.tail_discarded += 1
        attachment: Dict[str, Any] = {
            "t": root["trace_id"],
            "s": root["span_id"],
            "f": dtrace.FLAG_SAMPLED if sampled else 0,
        }
        if remote and sampled:
            attachment["span"] = root
        dtrace.set_outbound(attachment)
        return root

    def abort_trace(self, root: Dict[str, Any]) -> None:
        """Drop an open trace without publishing it (engine teardown)."""
        root.pop("_t0", None)
        self._local.stack = None

    def publish(self, root: Dict[str, Any]) -> None:
        """Append a finished trace to the ring (bounded, oldest evicted)."""
        with self._ring_lock:
            if len(self._ring) == self.capacity:
                self.evicted += 1  # the append below displaces the oldest
            self._ring.append(root)
            self.finished += 1

    # ------------------------------------------------------------------
    # Spans and events (called from any layer, any thread)
    # ------------------------------------------------------------------
    def span(self, name: str, **attrs: Any) -> _SpanHandle:
        """A child span of whatever is open on this thread.

        With tracing disabled -- or on a thread with no active trace --
        this returns a shared no-op handle: nothing is allocated.
        """
        if not self.enabled:
            return _NOOP
        stack = getattr(self._local, "stack", None)
        if not stack:
            return _NOOP
        root = stack[0]
        if not root.get("sampled", True):
            return _NOOP  # unsampled skeleton: keep the root only
        root["events"] += 1
        if root["events"] > self.max_events:
            root["dropped"] += 1
            return _NOOP
        parent = stack[-1]
        t0 = now_us()
        record: Dict[str, Any] = {
            "name": name,
            "start_us": t0 - root["_t0"],
            "dur_us": 0,
            "spans": [],
            "_t0": t0,
        }
        if attrs:
            record["attrs"] = attrs
        parent["spans"].append(record)
        stack.append(record)
        return _SpanHandle(self, record)

    def _close_span(self, record: Dict[str, Any]) -> None:
        record["dur_us"] = now_us() - record.pop("_t0")
        stack = getattr(self._local, "stack", None)
        if stack and stack[-1] is record:
            stack.pop()

    def event(self, name: str, **attrs: Any) -> None:
        """A zero-duration child record (a point in time, not a range)."""
        if not self.enabled:
            return
        stack = getattr(self._local, "stack", None)
        if not stack:
            return
        root = stack[0]
        if not root.get("sampled", True):
            return  # unsampled skeleton: keep the root only
        root["events"] += 1
        if root["events"] > self.max_events:
            root["dropped"] += 1
            return
        record: Dict[str, Any] = {
            "name": name,
            "start_us": now_us() - root["_t0"],
        }
        if attrs:
            record["attrs"] = attrs
        stack[-1]["spans"].append(record)

    def attach_subtree(self, record: Dict[str, Any]) -> None:
        """Graft an already-built span record under the open span.

        The router uses this to stitch a worker's returned subtree (or
        its own synthesized ``shard:<id>`` wrapper) into the active
        trace. Counts against ``max_events`` like any other child.
        """
        if not self.enabled:
            return
        stack = getattr(self._local, "stack", None)
        if not stack:
            return
        root = stack[0]
        if not root.get("sampled", True):
            return
        root["events"] += 1
        if root["events"] > self.max_events:
            root["dropped"] += 1
            return
        stack[-1]["spans"].append(record)

    # ------------------------------------------------------------------
    # EXPLAIN profiles (thread-local attribution sinks)
    # ------------------------------------------------------------------
    def attach_profile(self, profile: Any) -> None:
        """Attach an EXPLAIN profile to the calling thread.

        Core traversal call sites fetch it with :meth:`current_profile`
        (guarded by the ``profiling`` fast-path flag) and charge their
        per-level work into it -- the span context carries the profile,
        so attribution needs no new globals and threads cannot mix
        profiles. Must be paired with :meth:`detach_profile` in a
        ``finally`` block.
        """
        self._local.profile = profile
        with self._profiling_lock:
            self.profiling += 1

    def detach_profile(self) -> None:
        self._local.profile = None
        with self._profiling_lock:
            self.profiling -= 1

    def current_profile(self) -> Any:
        """The profile attached to this thread, or None."""
        return getattr(self._local, "profile", None)

    # ------------------------------------------------------------------
    # Reading traces back
    # ------------------------------------------------------------------
    def recent(self, n: Optional[int] = None) -> List[Dict[str, Any]]:
        """The last ``n`` finished traces, oldest first (all by default)."""
        with self._ring_lock:
            traces = list(self._ring)
        if n is not None:
            traces = traces[-n:]
        return traces

    def find(self, trace_id: str) -> Optional[Dict[str, Any]]:
        """The buffered trace with this id, newest first.

        When a process holds several records under one id (the in-process
        shard harness shares this tracer between router and workers), the
        parentless root -- the stitched tree -- wins.
        """
        with self._ring_lock:
            candidates = [
                rec
                for rec in self._ring
                if rec.get("trace_id") == trace_id
            ]
        for rec in reversed(candidates):
            if rec.get("parent_id") is None:
                return rec
        return candidates[-1] if candidates else None

    def stats(self) -> Dict[str, Any]:
        with self._ring_lock:
            buffered = len(self._ring)
        return {
            "enabled": self.enabled,
            "capacity": self.capacity,
            "max_events": self.max_events,
            "buffered": buffered,
            "started": self.started,
            "finished": self.finished,
            "evicted": self.evicted,
            "sample_rate": self.sample_rate,
            "tail_discarded": self.tail_discarded,
        }


#: The process-wide tracer every instrumented layer emits into.
TRACER = Tracer()


def trace_span(name: str, **attrs: Any) -> _SpanHandle:
    """Module-level shorthand for ``TRACER.span(...)``."""
    return TRACER.span(name, **attrs)


def trace_event(name: str, **attrs: Any) -> None:
    """Module-level shorthand for ``TRACER.event(...)``."""
    TRACER.event(name, **attrs)


def format_trace_tree(record: Dict[str, Any]) -> str:
    """Render one span tree as indented text, one line per span/event.

    Used by ``stats --format traces``: offsets and durations are the
    tracer's microseconds, so a stitched cross-process tree reads on one
    time axis.
    """
    import json

    lines: List[str] = []

    def walk(rec: Dict[str, Any], depth: int) -> None:
        head = "  " * depth + str(rec.get("name", "?"))
        head += f"  +{rec.get('start_us', 0):.0f}us"
        if "dur_us" in rec:
            head += f" ({rec['dur_us']:.0f}us)"
        attrs = rec.get("attrs")
        if attrs:
            rendered = " ".join(
                f"{key}={json.dumps(value, sort_keys=True, separators=(',', ':'))}"
                if isinstance(value, (dict, list))
                else f"{key}={value}"
                for key, value in sorted(attrs.items())
            )
            head += "  " + rendered
        if rec.get("error"):
            head += f"  ERROR: {rec['error']}"
        lines.append(head)
        for child in rec.get("spans", ()):
            walk(child, depth + 1)

    walk(record, 0)
    return "\n".join(lines)
