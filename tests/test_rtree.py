"""Tests for the R-tree family: Guttman base, split policies, R*-tree."""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.rtree import (
    GuttmanRTree,
    RStarTree,
    split_linear,
    split_quadratic,
    split_rstar,
)
from repro.geometry import Point, Rect, Segment
from repro.storage import StorageContext

from tests.conftest import (
    lattice_map,
    oracle_at_point,
    oracle_in_window,
    random_planar_segments,
)


def build(cls, segments, **kw):
    ctx = StorageContext.create()
    idx = cls(ctx, **kw)
    for sid in ctx.load_segments(segments):
        idx.insert(sid)
    return idx


class TestSplitPolicies:
    def _entries(self, rng, n):
        out = []
        for i in range(n):
            x = rng.randint(0, 900)
            y = rng.randint(0, 900)
            out.append((Rect(x, y, x + rng.randint(1, 80), y + rng.randint(1, 80)), i))
        return out

    @pytest.mark.parametrize("policy", [split_linear, split_quadratic, split_rstar])
    def test_groups_partition_entries(self, policy):
        rng = random.Random(3)
        entries = self._entries(rng, 11)
        g1, g2 = policy(entries, m=4)
        assert sorted(e[1] for e in g1 + g2) == sorted(e[1] for e in entries)
        assert len(g1) >= 4 and len(g2) >= 4

    @pytest.mark.parametrize("policy", [split_linear, split_quadratic, split_rstar])
    def test_minimum_m_respected_many_sizes(self, policy):
        rng = random.Random(4)
        for n in (4, 5, 8, 21, 51):
            for m in (2, n // 3 or 2):
                if 2 * m > n:
                    continue
                g1, g2 = policy(self._entries(rng, n), m=m)
                assert len(g1) >= m and len(g2) >= m
                assert len(g1) + len(g2) == n

    @pytest.mark.parametrize("policy", [split_linear, split_quadratic, split_rstar])
    def test_too_few_entries_rejected(self, policy):
        rng = random.Random(5)
        with pytest.raises(ValueError):
            policy(self._entries(rng, 5), m=3)

    def test_rstar_split_separates_two_clusters(self):
        left = [(Rect(i, 0, i + 1, 10), i) for i in range(5)]
        right = [(Rect(500 + i, 0, 501 + i, 10), 100 + i) for i in range(5)]
        g1, g2 = split_rstar(left + right, m=2)
        ids1 = {e[1] for e in g1}
        ids2 = {e[1] for e in g2}
        assert ids1 in ({0, 1, 2, 3, 4}, {100, 101, 102, 103, 104})
        assert ids1 | ids2 == {0, 1, 2, 3, 4, 100, 101, 102, 103, 104}

    def test_rstar_split_zero_overlap_when_possible(self):
        left = [(Rect(i, 0, i + 1, 10), i) for i in range(5)]
        right = [(Rect(500 + i, 0, 501 + i, 10), 100 + i) for i in range(5)]
        g1, g2 = split_rstar(left + right, m=2)
        r1 = Rect.union_of(r for r, _ in g1)
        r2 = Rect.union_of(r for r, _ in g2)
        assert r1.overlap_area(r2) == 0


@pytest.mark.parametrize("cls", [GuttmanRTree, RStarTree])
class TestRTreeStructure:
    def test_empty_tree(self, cls):
        ctx = StorageContext.create()
        idx = cls(ctx)
        assert idx.entry_count() == 0
        assert idx.height() == 1
        assert idx.page_count() == 1
        assert idx.candidate_ids_at_point(Point(1, 1)) == []
        assert idx.candidate_ids_in_rect(Rect(0, 0, 10, 10)) == []
        idx.check_invariants()

    def test_single_segment(self, cls):
        idx = build(cls, [Segment(10, 10, 50, 30)])
        assert idx.entry_count() == 1
        assert idx.candidate_ids_at_point(Point(10, 10)) == [0]
        assert idx.candidate_ids_at_point(Point(9, 10)) == []
        idx.check_invariants()

    def test_grows_and_invariants_hold(self, cls):
        segs = lattice_map(n=10, pitch=90)
        idx = build(cls, segs)
        assert idx.height() >= 2
        assert idx.entry_count() == len(segs)
        idx.check_invariants()

    def test_capacity_too_small_rejected(self, cls):
        ctx = StorageContext.create()
        with pytest.raises(ValueError):
            cls(ctx, capacity=3)

    def test_min_fill_too_large_rejected(self, cls):
        ctx = StorageContext.create()
        with pytest.raises(ValueError):
            cls(ctx, min_fill=0.9)

    def test_point_candidates_superset_of_oracle(self, cls):
        rng = random.Random(11)
        segs = random_planar_segments(rng)
        idx = build(cls, segs)
        for s in segs[:20]:
            for p in (s.start, s.end):
                got = set(idx.candidate_ids_at_point(p))
                assert got >= set(oracle_at_point(segs, p))

    def test_window_candidates_superset_of_oracle(self, cls):
        rng = random.Random(12)
        segs = random_planar_segments(rng)
        idx = build(cls, segs)
        for _ in range(20):
            x, y = rng.randint(0, 900), rng.randint(0, 900)
            w = Rect(x, y, x + rng.randint(10, 120), y + rng.randint(10, 120))
            got = set(idx.candidate_ids_in_rect(w))
            assert got >= set(oracle_in_window(segs, w))

    def test_delete_removes_and_preserves_invariants(self, cls):
        segs = lattice_map(n=7, pitch=100)
        ctx = StorageContext.create()
        idx = cls(ctx)
        ids = ctx.load_segments(segs)
        for sid in ids:
            idx.insert(sid)
        rng = random.Random(13)
        rng.shuffle(ids)
        for k, sid in enumerate(ids):
            idx.delete(sid)
            if k % 17 == 0:
                idx.check_invariants()
        assert idx.entry_count() == 0
        idx.check_invariants()

    def test_delete_missing_raises(self, cls):
        segs = [Segment(0, 0, 10, 10)]
        ctx = StorageContext.create()
        idx = cls(ctx)
        ids = ctx.load_segments(segs + [Segment(20, 20, 30, 30)])
        idx.insert(ids[0])
        with pytest.raises(KeyError):
            idx.delete(ids[1])

    def test_delete_then_query_consistent(self, cls):
        segs = lattice_map(n=6, pitch=100)
        ctx = StorageContext.create()
        idx = cls(ctx)
        ids = ctx.load_segments(segs)
        for sid in ids:
            idx.insert(sid)
        victim = ids[len(ids) // 2]
        vict_seg = segs[victim]
        idx.delete(victim)
        got = idx.candidate_ids_at_point(vict_seg.start)
        assert victim not in got
        idx.check_invariants()

    def test_metrics_charged(self, cls):
        segs = lattice_map(n=6, pitch=100)
        ctx = StorageContext.create()
        idx = cls(ctx)
        for sid in ctx.load_segments(segs):
            idx.insert(sid)
        before = ctx.counters.bbox_comps
        idx.candidate_ids_at_point(Point(100, 100))
        assert ctx.counters.bbox_comps > before

    def test_bulk_load_helper(self, cls):
        segs = lattice_map(n=4, pitch=150)
        ctx = StorageContext.create()
        idx = cls(ctx)
        idx.bulk_load(ctx.load_segments(segs))
        assert idx.entry_count() == len(segs)


class TestRStarSpecifics:
    def test_reinsertion_happens(self):
        """Force reinsert fires on the first leaf overflow below the root."""
        segs = lattice_map(n=12, pitch=75)
        ctx = StorageContext.create()
        idx = RStarTree(ctx, capacity=8)

        fired = []
        original = RStarTree._handle_overflow

        def spy(self, page_id, node, level, has_parent, overflow_levels):
            out = original(self, page_id, node, level, has_parent, overflow_levels)
            fired.append(out is not None)
            return out

        RStarTree._handle_overflow = spy
        try:
            for sid in ctx.load_segments(segs):
                idx.insert(sid)
        finally:
            RStarTree._handle_overflow = original
        assert any(fired), "forced reinsertion never triggered"
        assert not all(fired), "splits never happened"
        idx.check_invariants()

    def test_rstar_more_compact_than_rplus(self):
        """The paper: "The R*-tree is more compact than the R+-tree"
        (the R+-tree duplicates entries to keep its regions disjoint)."""
        from repro.core.rplus import RPlusTree
        from repro.geometry import Rect as R

        segs = lattice_map(n=14, pitch=65, jitter=10, seed=5)
        rstar = build(RStarTree, segs)
        ctx = StorageContext.create()
        rplus = RPlusTree(ctx, world=R(0, 0, 1024, 1024))
        for sid in ctx.load_segments(segs):
            rplus.insert(sid)
        assert rstar.page_count() <= rplus.page_count()
        assert rstar.entry_count() <= rplus.entry_count()

    def test_leaf_occupancy_reasonable(self):
        segs = lattice_map(n=14, pitch=65)
        idx = build(RStarTree, segs)
        occ = idx.leaf_occupancy()
        assert idx.min_entries <= occ <= idx.capacity

    def test_choose_subtree_shortcut_matches_full_path(self):
        """The containment shortcut must pick a zero-enlargement entry."""
        ctx = StorageContext.create()
        idx = RStarTree(ctx)
        from repro.core.rtree.node import RTreeNode

        node = RTreeNode(
            is_leaf=False,
            entries=[
                (Rect(0, 0, 100, 100), 1),
                (Rect(50, 50, 60, 60), 2),
                (Rect(200, 200, 300, 300), 3),
            ],
        )
        pick = idx._choose_subtree(node, Rect(55, 55, 58, 58), level=1)
        assert pick == 1  # smallest containing rectangle


class TestRTreePropertyBased:
    @settings(deadline=None, max_examples=25)
    @given(st.integers(0, 10_000))
    def test_random_maps_query_correct(self, seed):
        rng = random.Random(seed)
        segs = random_planar_segments(rng, n_cells=5)
        idx = build(RStarTree, segs)
        idx.check_invariants()
        p = segs[rng.randrange(len(segs))].start
        got = set(idx.candidate_ids_at_point(p))
        assert got >= set(oracle_at_point(segs, p))

    @settings(deadline=None, max_examples=15)
    @given(st.integers(0, 10_000))
    def test_insert_delete_interleaved(self, seed):
        rng = random.Random(seed)
        segs = random_planar_segments(rng, n_cells=5)
        ctx = StorageContext.create()
        idx = GuttmanRTree(ctx)
        ids = ctx.load_segments(segs)
        alive = set()
        for sid in ids:
            idx.insert(sid)
            alive.add(sid)
            if rng.random() < 0.3 and alive:
                victim = rng.choice(sorted(alive))
                idx.delete(victim)
                alive.discard(victim)
        idx.check_invariants()
        assert idx.entry_count() == len(alive)
