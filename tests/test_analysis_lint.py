"""The project AST linter: every RP rule fires, suppression discipline holds.

Each rule is exercised with a minimal source snippet under a path that
puts it in the right scope (rules RP01–RP03 and RP05 are scoped to
layers of the ``src/repro`` tree). The capstone test lints the real
``src/`` tree and requires it clean — with zero suppression pragmas.
"""

from __future__ import annotations

import os

from repro.analysis import lint_paths, lint_source
from repro.analysis.lint import RP00, RP01, RP02, RP03, RP04, RP05, iter_python_files

CORE = "src/repro/core/rtree/node.py"
STORAGE = "src/repro/storage/buffer_pool.py"
SERVICE = "src/repro/service/engine.py"

REPO_SRC = os.path.join(os.path.dirname(os.path.dirname(__file__)), "src")


def rules_of(findings):
    return {f.rule for f in findings}


# ----------------------------------------------------------------------
# RP01: DiskManager bypasses
# ----------------------------------------------------------------------
def test_rp01_disk_read_outside_storage():
    findings = lint_source("node = self.ctx.disk.read(pid)\n", CORE)
    assert rules_of(findings) == {RP01}
    assert findings[0].page_id == 1  # line number


def test_rp01_disk_write_and_raw_pages():
    src = "ctx.disk.write(pid, node)\npayload = tree.ctx.disk._pages[pid]\n"
    findings = lint_source(src, SERVICE)
    assert [f.rule for f in findings] == [RP01, RP01]
    assert [f.page_id for f in findings] == [1, 2]


def test_rp01_allowed_inside_storage_and_for_peek():
    assert lint_source("payload = self.disk.read(pid)\n", STORAGE) == []
    assert lint_source("node = self.ctx.disk.peek(pid)\n", CORE) == []
    assert lint_source("node = self.ctx.pool.get(pid)\n", CORE) == []


# ----------------------------------------------------------------------
# RP02: bare latch acquire/release
# ----------------------------------------------------------------------
def test_rp02_bare_acquire_release():
    src = "self.latch.acquire()\ndo_work()\nself.latch.release()\n"
    findings = lint_source(src, SERVICE)
    assert [f.rule for f in findings] == [RP02, RP02]


def test_rp02_with_block_is_clean():
    assert lint_source("with self.latch:\n    do_work()\n", SERVICE) == []


def test_rp02_exempts_the_latch_module_itself():
    src = "self._lock.acquire()\n"
    assert lint_source(src, "src/repro/storage/latch.py") == []


# ----------------------------------------------------------------------
# RP03: counter field ownership
# ----------------------------------------------------------------------
def test_rp03_io_field_outside_storage():
    findings = lint_source("ctx.counters.disk_reads += 1\n", CORE)
    assert rules_of(findings) == {RP03}


def test_rp03_comparison_fields_allowed_in_core_only():
    src = "self.counters.segment_comps += 1\n"
    assert lint_source(src, CORE) == []
    assert rules_of(lint_source(src, SERVICE)) == {RP03}


def test_rp03_io_fields_allowed_in_storage():
    assert lint_source("self.counters.buffer_hits += 1\n", STORAGE) == []


def test_rp03_merge_is_the_sanctioned_path():
    assert lint_source("session.counters.merge(scratch)\n", SERVICE) == []


def test_rp03_counter_name_string_literal_flagged():
    src = 'out = {"segment_comps": delta.segment_comps}\n'
    assert rules_of(lint_source(src, SERVICE)) == {RP03}
    assert rules_of(lint_source('x["disk_accesses"]\n', CORE)) == {RP03}


def test_rp03_counter_name_allowed_in_metric_names_module():
    src = 'SEGMENT_COMPS = "segment_comps"\n'
    assert lint_source(src, "src/repro/metric_names.py") == []


def test_rp03_counter_name_in_docstring_is_exempt():
    src = (
        'def f():\n'
        '    """Reports disk_reads and the segment_comps counter."""\n'
        '    return 0\n'
    )
    assert lint_source(src, SERVICE) == []


def test_rp03_imported_constant_is_the_sanctioned_spelling():
    src = (
        "from repro.metric_names import SEGMENT_COMPS\n"
        "out = {SEGMENT_COMPS: delta.segment_comps}\n"
    )
    assert lint_source(src, SERVICE) == []


# ----------------------------------------------------------------------
# RP04: exception swallowing
# ----------------------------------------------------------------------
def test_rp04_bare_except():
    src = "try:\n    f()\nexcept:\n    handle()\n"
    assert rules_of(lint_source(src, SERVICE)) == {RP04}


def test_rp04_broad_except_pass():
    src = "try:\n    f()\nexcept Exception:\n    pass\n"
    assert rules_of(lint_source(src, SERVICE)) == {RP04}


def test_rp04_tolerates_narrow_or_handled():
    assert lint_source("try:\n    f()\nexcept ValueError:\n    pass\n", CORE) == []
    src = "try:\n    f()\nexcept Exception as exc:\n    log(exc)\n"
    assert lint_source(src, SERVICE) == []


# ----------------------------------------------------------------------
# RP05: float literals in grid-coordinate positions (core only)
# ----------------------------------------------------------------------
def test_rp05_float_in_locational_code_call():
    findings = lint_source("code = locational_code(1.0, by, depth, 10)\n", CORE)
    assert rules_of(findings) == {RP05}


def test_rp05_float_bitwise_operand():
    assert rules_of(lint_source("mask = x << 2.0\n", CORE)) == {RP05}


def test_rp05_scoped_to_core():
    src = "code = locational_code(1.0, 2, 3, 10)\n"
    assert lint_source(src, "src/repro/harness/experiment.py") == []
    assert lint_source("code = locational_code(bx, by, d, 10)\n", CORE) == []


# ----------------------------------------------------------------------
# Suppression pragmas
# ----------------------------------------------------------------------
def test_justified_disable_suppresses_exactly_that_rule():
    src = (
        "node = self.ctx.disk.read(pid)  "
        "# repro-lint: disable=RP01 -- cold-path stats, measured separately\n"
    )
    assert lint_source(src, CORE) == []


def test_unjustified_disable_is_rp00_and_does_not_suppress():
    src = "node = self.ctx.disk.read(pid)  # repro-lint: disable=RP01\n"
    findings = lint_source(src, CORE)
    assert rules_of(findings) == {RP00, RP01}


def test_disable_only_covers_named_rules():
    src = (
        "self.latch.acquire()  "
        "# repro-lint: disable=RP01 -- wrong rule named on purpose\n"
    )
    assert rules_of(lint_source(src, SERVICE)) == {RP02}


def test_syntax_error_is_reported_not_raised():
    findings = lint_source("def broken(:\n", CORE)
    assert rules_of(findings) == {RP00}


# ----------------------------------------------------------------------
# The real tree
# ----------------------------------------------------------------------
def test_src_tree_lints_clean():
    assert lint_paths([REPO_SRC]) == []


def test_src_tree_suppression_discipline():
    """RP (measurement) suppressions stay at zero in src/.

    CC (concurrency) pragmas are permitted -- some blocking-under-lock
    is the design (the WAL's group-commit fsync) -- but every one must
    name only CC rules and carry a justification. The linter modules
    themselves are exempt: they document the pragma syntax.
    """
    from repro.analysis.lint import _DISABLE_RE

    for path in iter_python_files([REPO_SRC]):
        norm = path.replace(os.sep, "/")
        if norm.endswith(("repro/analysis/lint.py", "repro/analysis/concurrency.py")):
            continue
        with open(path, "r", encoding="utf-8") as fh:
            for lineno, line in enumerate(fh, start=1):
                if "repro-lint: disable" not in line:
                    continue
                m = _DISABLE_RE.search(line)
                assert m is not None, f"{path}:{lineno}: malformed pragma"
                rules = {r.strip() for r in m.group(1).split(",")}
                assert all(r.startswith("CC") for r in rules), (
                    f"{path}:{lineno}: suppresses {sorted(rules)}; only CC "
                    f"rules may be suppressed in src/"
                )
                assert m.group(2), f"{path}:{lineno}: pragma lacks justification"


def test_src_tree_concurrency_lints_clean():
    from repro.analysis import lint_concurrency_paths

    assert lint_concurrency_paths([REPO_SRC]) == []


def test_cli_lint_exit_codes(tmp_path, capsys):
    from repro.__main__ import main

    clean = tmp_path / "clean.py"
    clean.write_text("x = 1\n")
    assert main(["lint", str(clean)]) == 0
    assert "clean: 0 findings" in capsys.readouterr().out

    dirty = tmp_path / "dirty.py"
    dirty.write_text("try:\n    f()\nexcept:\n    pass\n")
    assert main(["lint", str(dirty)]) == 1
    assert "RP04" in capsys.readouterr().out

    assert main(["lint", str(tmp_path / "nope")]) == 2
