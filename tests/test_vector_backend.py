"""Parity suite for the vectorized traversal backend.

The contract under test (see ``repro/core/vector.py``): for every query
and structure, the vector backend returns *identical results* and
*identical paper counters* to the scalar reference -- per query for
``run()``, per batch totals for ``run_batch()`` (where only the
disk/hit split inside the pool-get total may shift, never the total or
the comparison counts). The suite runs twin builds of each structure so
the two backends never share buffer-pool state.
"""

from __future__ import annotations

import pytest

from repro.core.backends import SCALAR_BACKEND, ScalarBackend, resolve_backend
from repro.core.queries.spec import QuerySpec
from repro.core.vector import HAVE_NUMPY, VectorBackend
from repro.geometry import Point, Rect
from repro.service.api import BatchRequest, Explain, PointQuery, WindowQuery
from repro.service.engine import QueryEngine

from .conftest import build_index, lattice_map

# Module-level skip would also silence the fallback tests, which are
# exactly the ones that must run on a numpy-less interpreter.
needs_numpy = pytest.mark.skipif(
    not HAVE_NUMPY, reason="vector backend needs numpy"
)

STRUCTURES = ["R*", "R+", "PMR"]

SEGS = lattice_map(n=8, pitch=100, jitter=15, seed=7)


def _workload_specs():
    """A mixed workload touching every op the backend dispatches."""
    specs = [
        QuerySpec.window(Rect(120, 120, 430, 380)),
        QuerySpec.window(Rect(0, 0, 1024, 1024)),
        QuerySpec.window(Rect(640, 100, 660, 800)),
        QuerySpec.window(Rect(50, 50, 55, 55)),  # empty corner
        QuerySpec.window(Rect(150, 150, 700, 700), mode="contains"),
        QuerySpec.point(Point(SEGS[0].x1, SEGS[0].y1)),
        QuerySpec.point(Point(SEGS[10].x2, SEGS[10].y2)),
        QuerySpec.point(Point(3, 3)),  # miss
        QuerySpec.incident(Point(SEGS[5].x1, SEGS[5].y1)),
        QuerySpec.nearest(Point(512, 512), k=3),
        QuerySpec.other_endpoint(Point(SEGS[2].x1, SEGS[2].y1), 2),
        QuerySpec.polygon(Point(333, 333)),
    ]
    return specs


def _twin(kind):
    """Two identical builds (twin pools, so counter splits compare 1:1)."""
    return build_index(kind, SEGS), build_index(kind, SEGS)


def _delta(idx, thunk):
    idx.ctx.pool.clear()
    before = idx.ctx.counters.snapshot()
    value = thunk()
    return value, idx.ctx.counters.since(before)


@needs_numpy
@pytest.mark.parametrize("kind", STRUCTURES)
class TestSingleQueryParity:
    def test_results_and_counters_identical(self, kind):
        idx_s, idx_v = _twin(kind)
        vec = resolve_backend("vector")
        assert isinstance(vec, VectorBackend)
        for spec in _workload_specs():
            got_s, d_s = _delta(idx_s, lambda: SCALAR_BACKEND.run(idx_s, spec))
            got_v, d_v = _delta(idx_v, lambda: vec.run(idx_v, spec))
            assert got_s == got_v, spec
            # Single-query runs keep the *exact* counter split, not just
            # the totals: disk reads, hits, and both comparison counts.
            assert d_s.as_dict() == d_v.as_dict(), spec

    def test_batch_totals_match_sequential_scalar(self, kind):
        idx_s, idx_v = _twin(kind)
        vec = resolve_backend("vector")
        specs = _workload_specs()
        got_s, d_s = _delta(
            idx_s, lambda: [SCALAR_BACKEND.run(idx_s, s) for s in specs]
        )
        got_v, d_v = _delta(idx_v, lambda: vec.run_batch(idx_v, specs))
        assert got_s == got_v
        assert d_s.bbox_comps == d_v.bbox_comps
        assert d_s.segment_comps == d_v.segment_comps
        # Fused descents fetch a node page once per frontier visit
        # instead of once per query, so the batch's pool-get total may
        # only shrink, never grow -- and disk faults never increase.
        assert (
            d_v.disk_reads + d_v.buffer_hits
            <= d_s.disk_reads + d_s.buffer_hits
        )
        assert d_v.disk_reads <= d_s.disk_reads

    def test_explain_attribution_matches_scalar(self, kind):
        idx_s, idx_v = _twin(kind)
        eng_s = QueryEngine(idx_s, backend="scalar")
        eng_v = QueryEngine(idx_v, backend="vector")
        req = Explain(WindowQuery(100, 100, 600, 600))
        rep_s = eng_s.execute(req)
        rep_v = eng_v.execute(req)
        assert rep_s["exact"] and rep_v["exact"]
        assert rep_s["result_count"] == rep_v["result_count"]
        assert rep_s["observed"] == rep_v["observed"]
        # Per-level attribution, not just totals, is backend-invariant.
        assert rep_s["plan"]["levels"] == rep_v["plan"]["levels"]
        assert rep_s["backend"]["name"] == "scalar"
        assert rep_v["backend"]["name"] == "vector"

    def test_mutation_invalidates_mirrors(self, kind):
        from repro.geometry import Segment

        idx_s, idx_v = _twin(kind)
        vec = resolve_backend("vector")
        spec = QuerySpec.window(Rect(0, 0, 1024, 1024))
        assert vec.run(idx_v, spec) == SCALAR_BACKEND.run(idx_s, spec)
        for idx in (idx_s, idx_v):
            seg_id = idx.ctx.segments.append(Segment(10, 500, 990, 500))
            idx.insert(seg_id)
        vec.invalidate()
        got_s = SCALAR_BACKEND.run(idx_s, spec)
        got_v = vec.run(idx_v, spec)
        assert got_s == got_v
        assert any(
            sid == len(SEGS) for sid in got_v
        ), "freshly inserted segment must be visible post-invalidate"


@needs_numpy
class TestEngineIntegration:
    def test_cross_backend_cache_hit(self):
        # Cache keys carry no backend component: a result cached under
        # the scalar backend is served verbatim after a backend swap.
        idx = build_index("R*", SEGS)
        engine = QueryEngine(idx, backend="scalar")
        req = WindowQuery(100, 100, 600, 600)
        first = engine.execute(req)
        assert engine.cache.peek(req.cache_key())
        engine.backend = resolve_backend("vector")
        before = idx.ctx.counters.snapshot()
        second = engine.execute(req)
        assert second == first
        after = idx.ctx.counters.since(before)
        assert after.as_dict() == {
            name: 0 for name in after.as_dict()
        }, "cache hit must not traverse"

    def test_engine_batch_fuses_under_vector_backend(self):
        idx_s, idx_v = _twin("R*")
        eng_s = QueryEngine(idx_s, backend="scalar")
        eng_v = QueryEngine(idx_v, backend="vector")
        items = [
            {"op": "window", "x1": 100, "y1": 100, "x2": 400, "y2": 400},
            {"op": "window", "x1": 300, "y1": 300, "x2": 900, "y2": 900},
            {"op": "point", "x": SEGS[0].x1, "y": SEGS[0].y1},
            {"op": "nearest", "x": 500, "y": 500, "k": 2},
        ]
        batch = BatchRequest(requests=tuple(items), use_cache=False)
        out_s = eng_s.execute(batch)
        out_v = eng_v.execute(batch)
        assert out_s.results == out_v.results

    def test_stats_report_backend(self):
        idx = build_index("R*", SEGS)
        engine = QueryEngine(idx, backend="vector")
        desc = engine.stats()["backend"]
        assert desc["name"] == "vector"
        engine.execute(PointQuery(SEGS[0].x1, SEGS[0].y1))


class TestNumpyAbsentFallback:
    def test_resolve_falls_back_with_indicator(self, monkeypatch):
        import repro.core.vector as vector_mod

        monkeypatch.setattr(vector_mod, "HAVE_NUMPY", False)
        be = resolve_backend("vector")
        assert isinstance(be, ScalarBackend)
        assert be.describe() == {
            "name": "scalar",
            "requested": "vector",
            "fallback": True,
        }

    def test_engine_still_answers_under_fallback(self, monkeypatch):
        import repro.core.vector as vector_mod

        monkeypatch.setattr(vector_mod, "HAVE_NUMPY", False)
        idx = build_index("R*", SEGS)
        engine = QueryEngine(idx, backend="vector")
        stats = engine.stats()["backend"]
        assert stats["fallback"] is True and stats["requested"] == "vector"
        got = engine.execute(WindowQuery(100, 100, 600, 600))
        assert got == sorted(
            SCALAR_BACKEND.run(idx, QuerySpec.window(Rect(100, 100, 600, 600)))
        ) or got == SCALAR_BACKEND.run(
            idx, QuerySpec.window(Rect(100, 100, 600, 600))
        )
