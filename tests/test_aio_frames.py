"""Wire protocol v2 framing: the codec itself, no sockets."""

import json
import struct

import pytest

from repro.aio import (
    FLAG_RESPONSE,
    FRAME_HEADER,
    HEADER_BYTES,
    MAX_FRAME_BYTES,
    PROTOCOL_VERSION_2,
    decode_header,
    decode_payload,
    encode_frame,
)


class TestHeader:
    def test_layout_is_thirteen_bytes_little_endian(self):
        assert HEADER_BYTES == 13
        assert FRAME_HEADER.size == 13
        # flags u8 | length u32 | request_id u64, no padding
        assert FRAME_HEADER.format == "<BIQ"

    def test_version_constant(self):
        assert PROTOCOL_VERSION_2 == 2

    def test_decode_header_fields(self):
        header = FRAME_HEADER.pack(FLAG_RESPONSE, 42, 7)
        assert decode_header(header) == (FLAG_RESPONSE, 42, 7)

    def test_request_id_is_full_u64(self):
        big = (1 << 64) - 1
        frame = encode_frame(big, {"op": "ping"})
        _flags, _length, request_id = decode_header(frame[:HEADER_BYTES])
        assert request_id == big

    def test_length_counts_payload_only(self):
        payload = {"op": "ping"}
        frame = encode_frame(5, payload)
        _flags, length, _rid = decode_header(frame[:HEADER_BYTES])
        assert length == len(frame) - HEADER_BYTES
        assert length == len(json.dumps(payload, separators=(",", ":")))


class TestRoundTrip:
    def test_request_frame(self):
        payload = {"op": "point", "x": 1.5, "y": -2.0}
        frame = encode_frame(11, payload)
        flags, length, request_id = decode_header(frame[:HEADER_BYTES])
        assert flags == 0  # request: response bit clear
        assert request_id == 11
        assert decode_payload(frame[HEADER_BYTES : HEADER_BYTES + length]) == payload

    def test_response_frame_sets_flag(self):
        frame = encode_frame(3, {"ok": True, "result": "pong"}, response=True)
        flags, _length, _rid = decode_header(frame[:HEADER_BYTES])
        assert flags & FLAG_RESPONSE

    def test_payload_is_compact_json_no_newline(self):
        frame = encode_frame(1, {"op": "ping"})
        body = frame[HEADER_BYTES:]
        assert body == b'{"op":"ping"}'
        assert not body.endswith(b"\n")

    def test_two_frames_concatenate_cleanly(self):
        a = encode_frame(1, {"op": "ping"})
        b = encode_frame(2, {"op": "stats"})
        stream = a + b
        _f, length, rid = decode_header(stream[:HEADER_BYTES])
        assert rid == 1
        rest = stream[HEADER_BYTES + length :]
        _f, length2, rid2 = decode_header(rest[:HEADER_BYTES])
        assert rid2 == 2
        assert decode_payload(rest[HEADER_BYTES : HEADER_BYTES + length2]) == {
            "op": "stats"
        }


class TestPayloadValidation:
    def test_malformed_json_raises(self):
        with pytest.raises(ValueError):
            decode_payload(b"this is not json")

    def test_non_object_payload_raises(self):
        with pytest.raises(ValueError, match="JSON object"):
            decode_payload(b"[1, 2, 3]")

    def test_truncated_header_raises(self):
        with pytest.raises(struct.error):
            decode_header(b"\x00\x01")

    def test_frame_cap_matches_v1_line_cap(self):
        from repro.service.server import MAX_LINE_BYTES

        assert MAX_FRAME_BYTES == MAX_LINE_BYTES
