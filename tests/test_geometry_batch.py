"""Tests for the spatial-hash batch intersection finder."""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.geometry import Segment, batch_intersections
from repro.geometry.predicates import segments_intersect

from tests.conftest import random_planar_segments


def brute(segments, ignore_shared=False):
    out = set()
    for i in range(len(segments)):
        for j in range(i + 1, len(segments)):
            a, b = segments[i], segments[j]
            if not segments_intersect(a.start, a.end, b.start, b.end):
                continue
            if ignore_shared and ({a.start, a.end} & {b.start, b.end}):
                from repro.geometry.batch import _collinear_overlap

                if not _collinear_overlap(a, b):
                    continue
            out.add((i, j))
    return out


class TestBatchIntersections:
    def test_simple_cross(self):
        segs = [Segment(0, 0, 10, 10), Segment(0, 10, 10, 0)]
        assert batch_intersections(segs) == {(0, 1)}

    def test_disjoint(self):
        segs = [Segment(0, 0, 10, 0), Segment(0, 100, 10, 100)]
        assert batch_intersections(segs) == set()

    def test_empty_and_single(self):
        assert batch_intersections([]) == set()
        assert batch_intersections([Segment(0, 0, 5, 5)]) == set()

    def test_shared_endpoint_filter(self):
        segs = [Segment(0, 0, 10, 10), Segment(10, 10, 20, 0)]
        assert batch_intersections(segs) == {(0, 1)}
        assert batch_intersections(segs, ignore_shared_endpoints=True) == set()

    def test_collinear_overlap_not_excused(self):
        """Sharing an endpoint does not excuse running along each other."""
        segs = [Segment(0, 0, 10, 0), Segment(0, 0, 5, 0)]
        assert batch_intersections(segs, ignore_shared_endpoints=True) == {(0, 1)}

    def test_duplicate_segments_reported(self):
        segs = [Segment(0, 0, 10, 0), Segment(0, 0, 10, 0)]
        assert batch_intersections(segs, ignore_shared_endpoints=True) == {(0, 1)}

    def test_t_crossing_reported(self):
        """An endpoint landing mid-segment is NOT legal noding."""
        segs = [Segment(0, 0, 10, 0), Segment(5, 0, 5, 8)]
        assert batch_intersections(segs, ignore_shared_endpoints=True) == {(0, 1)}

    def test_matches_brute_force_on_random_soup(self):
        rng = random.Random(3)
        segs = [
            Segment(
                rng.randint(0, 300), rng.randint(0, 300),
                rng.randint(0, 300), rng.randint(0, 300),
            )
            for _ in range(60)
        ]
        assert batch_intersections(segs) == brute(segs)

    def test_cell_size_invariance(self):
        rng = random.Random(4)
        segs = [
            Segment(
                rng.randint(0, 300), rng.randint(0, 300),
                rng.randint(0, 300), rng.randint(0, 300),
            )
            for _ in range(40)
        ]
        expected = brute(segs)
        for cell in (5, 37, 100, 1000):
            assert batch_intersections(segs, cell_size=cell) == expected

    @settings(deadline=None, max_examples=20)
    @given(st.integers(0, 10_000))
    def test_property_vs_brute(self, seed):
        rng = random.Random(seed)
        segs = [
            Segment(
                rng.randint(0, 120), rng.randint(0, 120),
                rng.randint(0, 120), rng.randint(0, 120),
            )
            for _ in range(25)
        ]
        segs = [s for s in segs if not s.is_degenerate()]
        assert batch_intersections(segs) == brute(segs)
        assert batch_intersections(segs, ignore_shared_endpoints=True) == brute(
            segs, ignore_shared=True
        )


class TestMapPlanarity:
    def test_generated_counties_are_planar(self):
        from repro.data import generate_county

        for name in ("baltimore", "charles"):
            m = generate_county(name, scale=0.05)
            assert m.planarity_violations() == set(), name

    def test_violation_detected(self):
        from repro.data.generator import MapData

        m = MapData(
            "broken",
            [Segment(0, 0, 100, 100), Segment(0, 100, 100, 0)],
            world_size=1024,
        )
        assert m.planarity_violations() == {(0, 1)}
