"""The observability layer: tracer, histograms, registry, prom round-trip."""

import threading

import pytest

from repro.obs import (
    LatencyHistogram,
    MetricsRegistry,
    SlowQueryLog,
    Tracer,
    parse_prom_text,
)
from repro.obs.metrics import BUCKET_BOUNDS


class TestTracer:
    def test_disabled_tracer_is_inert(self):
        tracer = Tracer()
        assert tracer.start_trace("point") is None
        with tracer.span("traverse") as span:
            span.set_error("ignored")
        tracer.event("page_fetch", page=1)
        assert tracer.recent() == []
        assert tracer.stats()["started"] == 0

    def test_disabled_span_is_shared_noop(self):
        tracer = Tracer()
        assert tracer.span("a") is tracer.span("b")  # no allocation

    def test_span_tree_shape(self):
        tracer = Tracer()
        tracer.enable()
        root = tracer.start_trace("window", x1=0.0)
        with tracer.span("traverse"):
            tracer.event("page_fetch", page=3, outcome="miss")
            tracer.event("segment_read", seg_id=7)
        tracer.finish_trace(root)
        (trace,) = tracer.recent()
        assert trace["name"] == "window"
        assert trace["attrs"] == {"x1": 0.0}
        assert trace["dur_us"] >= 0.0
        (traverse,) = trace["spans"]
        assert traverse["name"] == "traverse"
        assert [s["name"] for s in traverse["spans"]] == [
            "page_fetch",
            "segment_read",
        ]
        assert traverse["spans"][0]["attrs"] == {"page": 3, "outcome": "miss"}
        assert trace["events"] == 3
        assert trace["dropped"] == 0

    def test_max_events_caps_a_trace(self):
        tracer = Tracer(max_events=4)
        tracer.enable()
        root = tracer.start_trace("window")
        for i in range(10):
            tracer.event("page_fetch", page=i)
        tracer.finish_trace(root)
        (trace,) = tracer.recent()
        assert len(trace["spans"]) == 4
        assert trace["events"] == 10
        assert trace["dropped"] == 6

    def test_ring_buffer_bounds_finished_traces(self):
        tracer = Tracer(capacity=3)
        tracer.enable()
        for i in range(7):
            root = tracer.start_trace(f"op{i}")
            tracer.finish_trace(root)
        names = [t["name"] for t in tracer.recent()]
        assert names == ["op4", "op5", "op6"]
        assert tracer.stats()["finished"] == 7

    def test_error_recorded_on_root(self):
        tracer = Tracer()
        tracer.enable()
        root = tracer.start_trace("delete")
        tracer.finish_trace(root, error="KeyError: unknown segment id 9")
        (trace,) = tracer.recent()
        assert "unknown segment id" in trace["error"]

    def test_active_tracks_thread_local_stack(self):
        tracer = Tracer()
        tracer.enable()
        assert not tracer.active()
        root = tracer.start_trace("batch")
        assert tracer.active()
        seen_in_thread = []
        t = threading.Thread(target=lambda: seen_in_thread.append(tracer.active()))
        t.start()
        t.join()
        assert seen_in_thread == [False]  # another thread has its own stack
        tracer.finish_trace(root)
        assert not tracer.active()

    def test_threads_build_separate_trees(self):
        tracer = Tracer(capacity=64)
        tracer.enable()

        def worker(tag):
            for _ in range(10):
                root = tracer.start_trace(tag)
                with tracer.span("traverse"):
                    tracer.event("page_fetch")
                tracer.finish_trace(root)

        threads = [
            threading.Thread(target=worker, args=(f"t{i}",)) for i in range(4)
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        traces = tracer.recent()
        assert len(traces) == 40
        # Every trace has exactly the structure its own thread built.
        for trace in traces:
            assert [s["name"] for s in trace["spans"]] == ["traverse"]
            assert trace["events"] == 2

    def test_rejects_degenerate_sizes(self):
        with pytest.raises(ValueError):
            Tracer(capacity=0)
        with pytest.raises(ValueError):
            Tracer(max_events=0)


class TestLatencyHistogram:
    def test_bucket_index_is_log2_of_micros(self):
        h = LatencyHistogram("h")
        assert h._bucket_index(0.0) == 0
        assert h._bucket_index(1e-6) == 0
        assert h._bucket_index(1.5e-6) == 1
        assert h._bucket_index(3e-6) == 2
        assert h._bucket_index(BUCKET_BOUNDS[-1]) == len(BUCKET_BOUNDS) - 1
        assert h._bucket_index(1e9) == len(BUCKET_BOUNDS)  # overflow slot

    def test_observe_accumulates(self):
        h = LatencyHistogram("h")
        for v in (1e-6, 2e-6, 1e-3, 2.0):
            h.observe(v)
        counts, total, total_sum = h.raw()
        assert total == 4
        assert sum(counts) == 4
        assert total_sum == pytest.approx(1e-6 + 2e-6 + 1e-3 + 2.0)

    def test_percentile_returns_bucket_bound(self):
        h = LatencyHistogram("h")
        for _ in range(99):
            h.observe(3e-6)  # falls in the (2us, 4us] bucket
        h.observe(1.0)
        assert h.percentile(0.5) == 4e-6
        assert h.percentile(1.0) >= 1.0
        assert h.percentile(0.0) == 4e-6  # rank clamps to the first sample

    def test_empty_percentile(self):
        assert LatencyHistogram("h").percentile(0.5) == 0.0


class TestSlowQueryLog:
    def test_disabled_by_default(self):
        log = SlowQueryLog()
        assert not log.enabled
        assert log.record("point", 100.0, {}) is False
        assert log.entries() == []

    def test_threshold_and_capacity(self):
        log = SlowQueryLog(threshold_ms=1.0, capacity=2)
        assert log.record("point", 0.0005, {}) is False  # 0.5ms: under
        for i in range(3):
            assert log.record("window", 0.002, {"i": i}) is True
        entries = log.entries()
        assert len(entries) == 2  # bounded
        assert entries[-1]["attrs"] == {"i": 2}
        assert log.stats()["recorded"] == 3


class TestRegistryAndProm:
    def test_counter_and_histogram_identity(self):
        reg = MetricsRegistry()
        a = reg.counter("repro_queries_total", op="point", status="ok")
        b = reg.counter("repro_queries_total", status="ok", op="point")
        assert a is b  # label order does not matter
        assert reg.histogram("repro_op_latency_seconds", op="point") is (
            reg.histogram("repro_op_latency_seconds", op="point")
        )

    def test_render_json(self):
        reg = MetricsRegistry()
        reg.counter("repro_traces_total").inc(3)
        reg.histogram("repro_op_latency_seconds", op="point").observe(1e-4)
        out = reg.render_json()
        assert out["counters"][0]["value"] == 3
        assert out["histograms"][0]["count"] == 1

    def test_prom_round_trip(self):
        reg = MetricsRegistry()
        reg.counter("repro_queries_total", op="point", status="ok").inc(5)
        reg.counter("repro_queries_total", op="window", status="ok").inc(2)
        hist = reg.histogram("repro_op_latency_seconds", op="point")
        for v in (1e-6, 5e-5, 2e-3, 0.5):
            hist.observe(v)
        text = reg.render_prom()
        families = parse_prom_text(text)  # raises if malformed
        counters = families["repro_queries_total"]
        assert counters["type"] == "counter"
        values = {
            tuple(sorted(labels.items())): value
            for _, labels, value in counters["samples"]
        }
        assert values[(("op", "point"), ("status", "ok"))] == 5
        lat = families["repro_op_latency_seconds"]
        assert lat["type"] == "histogram"
        count_samples = [
            v for n, _, v in lat["samples"] if n.endswith("_count")
        ]
        assert count_samples == [4]

    def test_parser_rejects_malformed(self):
        with pytest.raises(ValueError):
            parse_prom_text("repro_mystery_total 5\n")  # no TYPE header
        with pytest.raises(ValueError):
            parse_prom_text(
                "# TYPE x counter\nx{le= 5\n"
            )
        # Non-cumulative histogram buckets are rejected.
        bad = (
            "# TYPE h histogram\n"
            'h_bucket{le="0.001"} 5\n'
            'h_bucket{le="+Inf"} 3\n'
            "h_count 3\n"
        )
        with pytest.raises(ValueError, match="cumulative"):
            parse_prom_text(bad)
        # +Inf bucket disagreeing with _count is rejected.
        bad = (
            "# TYPE h histogram\n"
            'h_bucket{le="+Inf"} 3\n'
            "h_count 4\n"
        )
        with pytest.raises(ValueError, match="_count"):
            parse_prom_text(bad)

    def test_concurrent_observation(self):
        reg = MetricsRegistry()
        hist = reg.histogram("repro_op_latency_seconds", op="point")
        counter = reg.counter("repro_queries_total", op="point", status="ok")

        def worker():
            for _ in range(500):
                hist.observe(1e-5)
                counter.inc()

        threads = [threading.Thread(target=worker) for _ in range(8)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        counts, total, _ = hist.raw()
        assert total == 4000
        assert sum(counts) == 4000
        assert counter.value == 4000
