"""Page-id recycling and snapshot-staleness guards in the storage layer."""

import io

import pytest

from repro.geometry import Segment
from repro.storage import DiskManager, PageNotAllocatedError, StorageContext
from repro.storage.codec import CodecError, dump_database, load_database

from tests.conftest import build_index, lattice_map


class TestFreeList:
    def test_freed_id_is_reused(self):
        disk = DiskManager()
        a = disk.allocate("a")
        b = disk.allocate("b")
        disk.free(a)
        assert disk.free_page_count == 1
        assert disk.allocate("c") == a
        assert disk.free_page_count == 0
        assert disk.allocate("d") == b + 1  # free list empty: mint fresh

    def test_double_free_rejected(self):
        disk = DiskManager()
        page = disk.allocate()
        disk.free(page)
        with pytest.raises(PageNotAllocatedError):
            disk.free(page)

    def test_allocated_bytes_shrinks_on_free(self):
        disk = DiskManager(page_size=512)
        pages = [disk.allocate() for _ in range(4)]
        assert disk.allocated_bytes == 4 * 512
        disk.free(pages[0])
        assert disk.allocated_bytes == 3 * 512
        assert disk.high_water_bytes == 4 * 512

    def test_maintenance_workload_bounded(self):
        """Delete/insert churn must not grow the id space unboundedly.

        Without recycling, every split during re-insertion minted fresh
        ids and ``high_water_bytes`` grew monotonically with churn.
        """
        index = build_index("R*", lattice_map(n=10, pitch=90))
        disk = index.ctx.disk
        seg_count = len(index.ctx.segments)
        churn = list(range(0, seg_count, 3))
        for seg_id in churn:
            index.delete(seg_id)
        for seg_id in churn:
            index.insert(seg_id)
        high_water = disk._next_id
        for _ in range(3):  # repeat the same churn: ids must recycle
            for seg_id in churn:
                index.delete(seg_id)
            for seg_id in churn:
                index.insert(seg_id)
            index.check_invariants()
        assert disk._next_id <= high_water + 1
        assert disk.allocated_bytes <= high_water * disk.page_size


class TestDumpGuards:
    def test_dirty_pool_rejected(self):
        index = build_index("R*", lattice_map(n=4))
        assert index.ctx.pool.has_dirty()
        with pytest.raises(CodecError, match="dirty"):
            dump_database(index.ctx.disk, io.BytesIO(), pool=index.ctx.pool)

    def test_flushed_pool_accepted(self):
        index = build_index("R*", lattice_map(n=4))
        index.ctx.pool.flush()
        buf = io.BytesIO()
        pages = dump_database(index.ctx.disk, buf, pool=index.ctx.pool)
        assert pages == len(index.ctx.disk)

    def test_no_pool_keeps_old_behaviour(self):
        index = build_index("R*", lattice_map(n=4))
        index.ctx.pool.flush()
        assert dump_database(index.ctx.disk, io.BytesIO()) > 0


class TestDumpFidelity:
    def _roundtrip(self, disk):
        buf = io.BytesIO()
        dump_database(disk, buf)
        buf.seek(0)
        return load_database(buf)

    def test_free_list_survives_roundtrip(self):
        ctx = StorageContext.create()
        for seg in lattice_map(n=3):
            ctx.segments.append(seg)
        extra = ctx.pool.create([Segment(1.0, 1.0, 2.0, 2.0)])
        ctx.pool.flush()
        ctx.pool.drop(extra)
        ctx.disk.free(extra)
        loaded = self._roundtrip(ctx.disk)
        assert loaded._free_ids == ctx.disk._free_ids
        assert loaded.allocate() == extra  # recycled id survives the dump

    def test_physical_counters_survive_roundtrip(self):
        ctx = StorageContext.create()
        for seg in lattice_map(n=3):
            ctx.segments.append(seg)
        ctx.pool.flush()
        ctx.pool.clear()
        for seg_id in range(len(ctx.segments)):
            ctx.segments.fetch(seg_id)
        disk = ctx.disk
        assert disk.physical_reads > 0 and disk.physical_writes > 0
        loaded = self._roundtrip(disk)
        assert loaded.physical_reads == disk.physical_reads
        assert loaded.physical_writes == disk.physical_writes
