"""The durable store: checkpoint protocol, recovery replay, WAL fsck."""

import json
import os

import pytest

from repro.analysis import ERROR, check_durable, check_wal, has_errors
from repro.geometry import Point, Segment
from repro.service.engine import QueryEngine
from repro.storage import StorageContext
from repro.wal import DurableStore, WalError, open_durable, replay_records
from repro.wal.crashtest import base_map, make_index
from repro.wal.records import DeleteRecord, InsertRecord
from repro.wal.store import LOG_NAME, MANIFEST_NAME


def build_store(root, kind="R*", group_commit=1):
    ctx = StorageContext.create()
    index = make_index(kind, ctx)
    for seg_id in ctx.load_segments(base_map()):
        index.insert(seg_id)
    return DurableStore.create(root, index, group_commit=group_commit)


class TestDurableStore:
    def test_create_then_open_round_trip(self, tmp_path):
        root = tmp_path / "store"
        store = build_store(root)
        n = len(store.index.ctx.segments)
        store.close()
        reopened = open_durable(root)
        assert len(reopened.index.ctx.segments) == n
        assert reopened.checkpoint_lsn == 0
        assert reopened.replayed_records == 0
        reopened.close()

    def test_create_refuses_existing_store(self, tmp_path):
        root = tmp_path / "store"
        build_store(root).close()
        with pytest.raises(FileExistsError):
            build_store(root)

    def test_mutations_survive_reopen(self, tmp_path):
        root = tmp_path / "store"
        store = build_store(root)
        engine = QueryEngine(store.index, store=store)
        seg_id = engine.insert_segment(Segment(11, 13, 77, 91))
        engine.delete(0)
        store.close()
        recovered = open_durable(root)
        assert recovered.replayed_records == 2
        assert seg_id in recovered.index.candidate_ids_at_point(Point(11, 13))
        with pytest.raises(KeyError):
            recovered.index.delete(0)  # the delete was replayed
        recovered.close()

    def test_checkpoint_truncates_replay_suffix(self, tmp_path):
        root = tmp_path / "store"
        store = build_store(root)
        engine = QueryEngine(store.index, store=store)
        engine.insert_segment(Segment(11, 13, 77, 91))
        engine.insert_segment(Segment(200, 10, 340, 44))
        result = engine.checkpoint()
        assert result["checkpoint_lsn"] == 2
        assert result["folded_records"] == 2
        engine.insert_segment(Segment(600, 600, 700, 770))  # LSN 3
        store.close()
        recovered = open_durable(root)
        # Acceptance: recovery after a checkpoint replays ONLY the suffix.
        assert recovered.checkpoint_lsn == 2
        assert recovered.replayed_records == 1
        recovered.close()

    def test_engine_checkpoint_requires_durable_mode(self):
        ctx = StorageContext.create()
        index = make_index("R*", ctx)
        with pytest.raises(RuntimeError, match="durable"):
            QueryEngine(index).checkpoint()

    def test_durable_engine_rejects_bare_insert(self, tmp_path):
        store = build_store(tmp_path / "store")
        engine = QueryEngine(store.index, store=store)
        with pytest.raises(RuntimeError, match="WAL"):
            engine.insert(0)
        store.close()

    def test_engine_must_serve_the_stores_index(self, tmp_path):
        store = build_store(tmp_path / "store")
        other = make_index("R*", StorageContext.create())
        with pytest.raises(ValueError, match="store's own index"):
            QueryEngine(other, store=store)
        store.close()

    def test_stats_carry_wal_counters(self, tmp_path):
        store = build_store(tmp_path / "store")
        engine = QueryEngine(store.index, store=store)
        engine.insert_segment(Segment(5, 5, 25, 25))
        stats = engine.stats()
        assert stats["durable"] is True
        assert stats["last_lsn"] == 1
        assert stats["wal"]["log_appends"] == 1
        assert stats["wal"]["fsyncs"] >= 1
        assert stats["wal"]["replayed_records"] == 0
        store.close()

    def test_non_durable_stats_have_no_wal(self):
        engine = QueryEngine(make_index("R*", StorageContext.create()))
        stats = engine.stats()
        assert stats["durable"] is False
        assert "wal" not in stats


class TestReplaySemantics:
    def test_duplicate_replay_is_idempotent(self, tmp_path):
        """Applying the same records twice converges to the same state."""
        root = tmp_path / "store"
        store = build_store(root)
        engine = QueryEngine(store.index, store=store)
        a = engine.insert_segment(Segment(31, 41, 59, 26))
        engine.delete(1)
        store.close()

        recovered = open_durable(root)
        records = [
            InsertRecord(1, a, Segment(31, 41, 59, 26)),
            DeleteRecord(2, 1),
        ]
        second = replay_records(recovered.index, records, checkpoint_lsn=0)
        assert second.replayed_records == 2
        assert second.inserted == 0  # insert already present: skipped
        assert second.deleted == 0
        assert second.noop_deletes == 1  # delete already applied: no-op
        recovered.close()

    def test_insert_gap_is_rejected(self, tmp_path):
        store = build_store(tmp_path / "store")
        n = len(store.index.ctx.segments)
        with pytest.raises(WalError, match="disagree"):
            replay_records(
                store.index,
                [InsertRecord(1, n + 5, Segment(0, 0, 9, 9))],
                checkpoint_lsn=0,
            )
        store.close()

    @pytest.mark.parametrize("order", ["morton", "hilbert", "lsn"])
    def test_replay_orders_agree(self, tmp_path, order):
        root = tmp_path / f"store-{order}"
        store = build_store(root)
        engine = QueryEngine(store.index, store=store)
        for i in range(6):
            engine.insert_segment(
                Segment(30 + 100 * i, 40 + 90 * i, 90 + 100 * i, 80 + 90 * i)
            )
        engine.delete(2)
        store.close()
        from repro.wal.crashtest import probe_results

        recovered = open_durable(root, replay_order=order)
        assert recovered.replayed_records == 7
        probes = probe_results(recovered.index)
        recovered.close()
        # Every order recovers the same logical state.
        fresh = open_durable(root, replay_order="lsn")
        assert probe_results(fresh.index) == probes
        fresh.close()

    def test_net_cancellation_skips_dead_inserts(self, tmp_path):
        root = tmp_path / "store"
        store = build_store(root)
        engine = QueryEngine(store.index, store=store)
        sid = engine.insert_segment(Segment(511, 511, 600, 613))
        engine.delete(sid)  # insert + delete inside the same suffix
        store.close()
        recovered = open_durable(root)
        assert recovered.replayed_records == 2
        assert recovered.replay_result.inserted == 0  # net-cancelled
        assert recovered.replay_result.deleted == 0
        recovered.close()


class TestWalFsck:
    def test_clean_store_fscks_clean(self, tmp_path):
        root = tmp_path / "store"
        store = build_store(root)
        engine = QueryEngine(store.index, store=store)
        engine.insert_segment(Segment(5, 5, 100, 100))
        engine.checkpoint()
        store.close()
        findings = check_durable(root)
        assert findings == []

    def test_unrotated_log_is_a_warning(self, tmp_path):
        root = tmp_path / "store"
        store = build_store(root)
        engine = QueryEngine(store.index, store=store)
        engine.insert_segment(Segment(5, 5, 100, 100))
        engine.checkpoint()
        engine.insert_segment(Segment(7, 7, 90, 80))
        store.close()
        # Regress the log to a pre-rotation copy: base 0 < checkpoint 1.
        log = os.path.join(root, LOG_NAME)
        from repro.wal.log import HEADER, MAGIC

        with open(log, "r+b") as fh:
            fh.seek(0)
            fh.write(HEADER.pack(MAGIC, 0))
        findings = check_durable(root)
        fs10 = [f for f in findings if f.rule == "FS10"]
        assert fs10 and fs10[0].severity == "warning"

    def test_missing_records_is_an_error(self, tmp_path):
        root = tmp_path / "store"
        store = build_store(root)
        store.close()
        # A log that starts beyond the checkpoint has lost records.
        from repro.wal.log import HEADER, MAGIC

        log = os.path.join(root, LOG_NAME)
        with open(log, "r+b") as fh:
            fh.write(HEADER.pack(MAGIC, 9))
        findings = check_wal(log, checkpoint_lsn=0)
        assert any(f.rule == "FS10" and f.severity == ERROR for f in findings)
        with pytest.raises(WalError, match="missing"):
            open_durable(root)

    def test_torn_tail_is_a_warning(self, tmp_path):
        root = tmp_path / "store"
        store = build_store(root)
        engine = QueryEngine(store.index, store=store)
        engine.insert_segment(Segment(5, 5, 100, 100))
        store.close()
        log = os.path.join(root, LOG_NAME)
        with open(log, "r+b") as fh:
            fh.truncate(os.path.getsize(log) - 3)
        findings = check_wal(log)
        fs07 = [f for f in findings if f.rule == "FS07"]
        assert fs07 and fs07[0].severity == "warning"
        assert not has_errors(findings)

    def test_manifest_snapshot_lsn_mismatch(self, tmp_path):
        root = tmp_path / "store"
        store = build_store(root)
        engine = QueryEngine(store.index, store=store)
        engine.insert_segment(Segment(5, 5, 100, 100))
        engine.checkpoint()
        store.close()
        manifest_path = os.path.join(root, MANIFEST_NAME)
        with open(manifest_path, "r", encoding="utf-8") as fh:
            manifest = json.load(fh)

        # Manifest newer than snapshot: the named checkpoint is missing.
        manifest["checkpoint_lsn"] = 99
        with open(manifest_path, "w", encoding="utf-8") as fh:
            json.dump(manifest, fh)
        findings = check_durable(root)
        assert any(f.rule == "FS09" and f.severity == ERROR for f in findings)

        # Snapshot newer than manifest: an interrupted checkpoint.
        manifest["checkpoint_lsn"] = 0
        with open(manifest_path, "w", encoding="utf-8") as fh:
            json.dump(manifest, fh)
        findings = check_durable(root)
        fs09 = [f for f in findings if f.rule == "FS09"]
        assert fs09 and all(f.severity == "warning" for f in fs09)

    def test_corrupt_manifest_is_diagnosed(self, tmp_path):
        root = tmp_path / "store"
        build_store(root).close()
        with open(os.path.join(root, MANIFEST_NAME), "w") as fh:
            fh.write("{not json")
        assert has_errors(check_durable(root))
        with pytest.raises(WalError, match="corrupt"):
            open_durable(root)
