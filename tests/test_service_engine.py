"""The concurrent query engine: latching, attribution, caching."""

import random
import threading

import pytest

from repro.geometry import Segment
from repro.service import QueryEngine, ResultCache
from repro.storage import Latch
from repro.storage.counters import MetricsCounters

from tests.conftest import build_index, lattice_map


@pytest.fixture()
def engine():
    return QueryEngine(build_index("R*", lattice_map(n=8)), cache_capacity=64)


class TestAttribution:
    def test_sessions_sum_to_totals(self, engine):
        a = engine.session("alice")
        b = engine.session("bob")
        engine.point(100, 100, session=a)
        engine.window(0, 0, 500, 500, session=b)
        engine.nearest(321, 321, session=a)
        assert engine.counters_consistent()
        assert a.counters.disk_accesses > 0 or a.counters.buffer_hits > 0
        total = MetricsCounters()
        total.merge(a.counters)
        total.merge(b.counters)
        assert total == engine.totals

    def test_concurrent_sessions_stay_consistent(self, engine):
        def worker(name):
            session = engine.session(name)
            rng = random.Random(sum(map(ord, name)))
            for _ in range(50):
                roll = rng.random()
                if roll < 0.4:
                    engine.point(rng.randrange(900), rng.randrange(900), session=session)
                elif roll < 0.8:
                    x, y = rng.randrange(800), rng.randrange(800)
                    engine.window(x, y, x + 150, y + 150, session=session)
                else:
                    engine.nearest(rng.randrange(900), rng.randrange(900), session=session)

        threads = [
            threading.Thread(target=worker, args=(f"w{i}",)) for i in range(4)
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert engine.counters_consistent()
        assert len(engine.sessions()) == 4
        assert engine.totals.disk_accesses + engine.totals.buffer_hits > 0

    def test_shared_counters_untouched_by_queries(self, engine):
        base = engine.ctx.counters.snapshot()
        engine.window(0, 0, 800, 800)
        assert engine.ctx.counters.snapshot() == base

    def test_query_answers_match_direct_calls(self, engine):
        from repro.core.queries import window_query
        from repro.geometry import Rect

        direct = sorted(window_query(engine.index, Rect(0, 0, 450, 450)))
        served = sorted(engine.window(0, 0, 450, 450))
        assert served == direct


class TestCaching:
    def test_repeat_query_hits_cache(self, engine):
        session = engine.session("s")
        first = engine.window(0, 0, 300, 300, session=session)
        before = session.counters.snapshot()
        second = engine.window(0, 0, 300, 300, session=session)
        assert second == first
        assert session.counters.since(before).disk_reads == 0
        assert session.cache_hits == 1
        assert engine.cache.stats()["hits"] == 1

    def test_window_key_canonicalized(self, engine):
        engine.window(300, 300, 0, 0)
        engine.window(0, 0, 300, 300)
        assert engine.cache.stats()["hits"] == 1

    def test_insert_invalidates(self, engine):
        engine.window(0, 0, 300, 300)
        assert len(engine.cache) == 1
        seg_id = engine.insert_segment(Segment(10.0, 10.0, 90.0, 95.0))
        assert len(engine.cache) == 0
        assert engine.cache.stats()["invalidations"] == 1
        # the new segment is immediately visible (no stale cache entry)
        assert seg_id in engine.window(0, 0, 300, 300)

    def test_delete_invalidates_and_removes(self, engine):
        seg_id = engine.insert_segment(Segment(10.0, 10.0, 90.0, 95.0))
        assert seg_id in engine.window(0, 0, 300, 300)
        engine.delete(seg_id)
        assert len(engine.cache) == 0
        assert seg_id not in engine.window(0, 0, 300, 300)
        assert engine.counters_consistent()

    def test_use_cache_false_bypasses(self, engine):
        engine.window(0, 0, 300, 300, use_cache=False)
        assert len(engine.cache) == 0


class TestMutationInvalidation:
    """Regression: every mutation path must invalidate the result cache."""

    def test_batch_mutations_invalidate(self, engine):
        from repro.service import BatchExecutor

        batch = BatchExecutor(engine)
        stale = engine.window(0, 0, 300, 300)
        result = batch.execute(
            [
                {"op": "window", "x1": 0, "y1": 0, "x2": 300, "y2": 300},
                {"op": "insert", "x1": 20.0, "y1": 20.0, "x2": 80.0, "y2": 85.0},
                {"op": "window", "x1": 0, "y1": 0, "x2": 300, "y2": 300},
            ]
        )
        seg_id = result.results[1]
        assert result.results[0] == stale  # read scheduled before the barrier
        assert seg_id in result.results[2]  # read after the barrier sees it
        batch.execute([{"op": "delete", "seg_id": seg_id}])
        assert seg_id not in engine.window(0, 0, 300, 300)
        assert engine.counters_consistent()

    def test_batch_barrier_pins_mutation_position(self, engine):
        from repro.service.batch import BatchExecutor

        batch = BatchExecutor(engine)
        requests = [
            {"op": "point", "x": 700, "y": 700},
            {"op": "insert", "x1": 1.0, "y1": 2.0, "x2": 3.0, "y2": 4.0},
            {"op": "point", "x": 100, "y": 100},
            {"op": "delete", "seg_id": 0},
            {"op": "point", "x": 500, "y": 500},
        ]
        schedule = batch._schedule(requests, "morton")
        # Mutations stay at their arrival positions; reads never cross one.
        assert schedule[1] == 1 and schedule[3] == 3
        assert sorted(schedule) == list(range(5))

    def test_durable_mutations_invalidate(self, tmp_path):
        from repro.wal import DurableStore

        index = build_index("R*", lattice_map(n=6))
        store = DurableStore.create(tmp_path / "store", index)
        engine = QueryEngine(index, store=store)
        engine.window(0, 0, 400, 400)
        assert len(engine.cache) == 1
        seg_id = engine.insert_segment(Segment(15.0, 15.0, 95.0, 90.0))
        assert len(engine.cache) == 0
        assert seg_id in engine.window(0, 0, 400, 400)
        engine.delete(seg_id)
        assert len(engine.cache) == 0
        assert seg_id not in engine.window(0, 0, 400, 400)
        assert engine.stats()["last_lsn"] == 2
        store.close()


class TestResultCacheUnit:
    def test_lru_eviction(self):
        cache = ResultCache(capacity=2)
        cache.store("a", 1)
        cache.store("b", 2)
        assert cache.lookup("a") == (True, 1)  # refresh a
        cache.store("c", 3)  # evicts b
        assert cache.lookup("b") == (False, None)
        assert cache.lookup("a") == (True, 1)
        assert cache.lookup("c") == (True, 3)
        assert cache.evictions == 1

    def test_zero_capacity_never_stores(self):
        cache = ResultCache(capacity=0)
        cache.store("a", 1)
        assert cache.lookup("a") == (False, None)

    def test_hit_rate(self):
        cache = ResultCache()
        cache.store("k", "v")
        cache.lookup("k")
        cache.lookup("nope")
        assert cache.hit_rate == 0.5


class TestLatch:
    def test_counts_contention(self):
        latch = Latch("t")
        held = threading.Event()
        release = threading.Event()

        def holder():
            with latch:
                held.set()
                release.wait(timeout=30)

        t = threading.Thread(target=holder)
        t.start()
        held.wait(timeout=30)
        waiter_done = threading.Event()

        def waiter():
            with latch:
                waiter_done.set()

        w = threading.Thread(target=waiter)
        w.start()
        release.set()
        t.join()
        w.join()
        assert waiter_done.is_set()
        assert latch.acquisitions == 2
        assert latch.contended >= 1

    def test_reentrant(self):
        latch = Latch("t")
        with latch:
            with latch:
                pass
        assert latch.acquisitions == 1

    def test_release_by_non_holder_rejected(self):
        latch = Latch("t")
        with pytest.raises(RuntimeError):
            latch.release()

    def test_stats_endpoint(self, engine):
        engine.point(100, 100)
        stats = engine.stats()
        assert stats["counters_consistent"] is True
        assert stats["index"]["kind"] == "R*"
        assert stats["latch"]["acquisitions"] >= 1
        assert stats["pool"]["capacity"] == 16
