"""Structural health telemetry, build info, and trace-ring saturation.

Health must be a pure observer: every number is computed over
``disk.peek`` or in-memory directory state, so refreshing the gauges
moves no ``MetricsCounters`` field, no pool statistic, and no fsck
verdict -- a live server can be health-checked mid-benchmark.
"""

import pytest

from repro.analysis import check_index
from repro.obs import (
    TRACER,
    MetricsRegistry,
    Tracer,
    compute_health,
    parse_prom_text,
    publish_build_info,
    publish_health,
)
from repro.obs.health import OCCUPANCY_BUCKETS
from repro.service import QueryEngine
from repro.service.api import Health

from tests.conftest import build_index, lattice_map


class TestComputeHealth:
    def test_tree_report_shape(self):
        idx = build_index("R*", lattice_map(n=8))
        report = compute_health(idx)
        assert report["kind"] == "tree"
        assert report["structure"] == "R*"
        assert report["pages"] == report["leaves"] + report["internal_nodes"]
        assert sum(report["node_occupancy"].values()) == report["pages"]
        assert set(report["node_occupancy"]) == set(OCCUPANCY_BUCKETS)
        assert 0.0 <= report["avg_leaf_occupancy"] <= 1.0
        assert 0.0 <= report["dead_space_ratio"] <= 1.0
        assert report["overlap_area"] >= 0.0

    def test_rplus_tiles_without_overlap_but_duplicates(self):
        idx = build_index("R+", lattice_map(n=8))
        report = compute_health(idx)
        assert report["overlap_area"] == 0.0  # disjoint directory rects
        assert report["duplication_factor"] >= 1.0
        assert report["entries"] >= report["segments"]

    def test_pmr_report_shape(self):
        idx = build_index("PMR", lattice_map(n=8))
        report = compute_health(idx)
        assert report["kind"] == "pmr"
        assert sum(report["block_depth"].values()) == report["leaf_blocks"]
        assert report["occupied_blocks"] <= report["leaf_blocks"]
        assert 0.0 <= report["split_pressure"] <= 1.0
        assert report["duplication_factor"] >= 1.0
        assert report["btree_height"] >= 1

    def test_health_moves_no_counter_and_no_fsck_verdict(self):
        for kind in ("R*", "R+", "PMR"):
            idx = build_index(kind, lattice_map(n=8))
            fsck_before = [f.to_dict() for f in check_index(idx)]
            counters_before = idx.ctx.counters.snapshot()
            pool_resident = len(idx.ctx.pool)
            compute_health(idx)
            publish_health(idx, MetricsRegistry())
            assert idx.ctx.counters.snapshot() == counters_before, kind
            assert len(idx.ctx.pool) == pool_resident, kind
            fsck_after = [f.to_dict() for f in check_index(idx)]
            assert fsck_before == fsck_after, kind


class TestPublishHealth:
    def test_gauges_render_and_parse_back(self):
        registry = MetricsRegistry()
        idx = build_index("PMR", lattice_map(n=8))
        report = publish_health(idx, registry)
        families = parse_prom_text(registry.render_prom())
        assert families["repro_index_pages"]["type"] == "gauge"
        (sample,) = families["repro_index_pages"]["samples"]
        assert sample[1] == {"structure": "PMR"}
        assert sample[2] == report["pages"]
        depth_samples = families["repro_index_block_depth"]["samples"]
        assert {s[1]["depth"] for s in depth_samples} == set(
            report["block_depth"]
        )

    def test_engine_health_op_returns_report(self):
        engine = QueryEngine(
            build_index("R*", lattice_map(n=6)), registry=MetricsRegistry()
        )
        before = engine.totals.as_dict()
        report = engine.execute(Health())
        assert report["structure"] == "R*"
        assert engine.totals.as_dict() == before  # zero counter movement
        families = parse_prom_text(engine.registry.render_prom())
        assert "repro_index_height" in families


class TestBuildInfo:
    def test_round_trips_through_strict_parser(self):
        registry = MetricsRegistry()
        publish_build_info(registry, page_size=1024, grid_bits=14)
        families = parse_prom_text(registry.render_prom())
        (sample,) = families["repro_build_info"]["samples"]
        _, labels, value = sample
        assert value == 1
        assert labels["page_size"] == "1024"
        assert labels["grid_bits"] == "14"
        assert labels["version"]
        assert labels["git_sha"]  # "unknown" outside a work tree, never empty

    def test_engine_publishes_build_info_on_construction(self):
        registry = MetricsRegistry()
        QueryEngine(build_index("R*", lattice_map(n=6)), registry=registry)
        families = parse_prom_text(registry.render_prom())
        (sample,) = families["repro_build_info"]["samples"]
        assert sample[2] == 1


class TestTraceRingSaturation:
    def test_wrap_increments_evicted(self):
        tracer = Tracer()
        tracer.enable(capacity=3)
        for i in range(8):
            root = tracer.start_trace("point", i=i)
            tracer.finish_trace(root)
        assert tracer.evicted == 5
        assert len(tracer.recent()) == 3
        assert tracer.stats()["evicted"] == 5
        # The survivors are the newest three, in oldest-first order.
        assert [t["attrs"]["i"] for t in tracer.recent()] == [5, 6, 7]

    def test_engine_mirrors_drops_into_registry(self):
        registry = MetricsRegistry()
        engine = QueryEngine(
            build_index("R*", lattice_map(n=6)), registry=registry
        )
        evicted_before = TRACER.evicted
        saved_capacity = TRACER.capacity
        TRACER.enable(capacity=2)
        try:
            for _ in range(5):
                engine.point(100, 100, use_cache=False)
        finally:
            TRACER.enable(capacity=saved_capacity)  # restore the ring size
            TRACER.disable()
            TRACER.clear()
        assert TRACER.evicted == evicted_before + 3
        engine.sync_mirrored_counters()
        families = parse_prom_text(registry.render_prom())
        (sample,) = families["repro_trace_dropped_total"]["samples"]
        assert sample[2] == TRACER.evicted
