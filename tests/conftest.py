"""Shared fixtures and oracles for the test suite."""

from __future__ import annotations

import random
from typing import List

import pytest

from repro.core import (
    GuttmanRTree,
    KDBTree,
    PM1Quadtree,
    PMRQuadtree,
    RPlusTree,
    RStarTree,
    TrueRPlusTree,
    UniformGrid,
)
from repro.geometry import Point, Rect, Segment
from repro.storage import StorageContext

#: Small world so tests exercise deep decompositions quickly.
TEST_WORLD = 1024
TEST_DEPTH = 10

ALL_STRUCTURES = ["R*", "R", "R+", "R+t", "kdB", "PMR", "PM1", "grid"]


def make_index(kind: str, ctx: StorageContext):
    """Construct a structure sized for the small test world."""
    if kind == "R*":
        return RStarTree(ctx)
    if kind == "R":
        return GuttmanRTree(ctx)
    if kind == "R+":
        return RPlusTree(ctx, world=Rect(0, 0, TEST_WORLD, TEST_WORLD))
    if kind == "R+t":
        return TrueRPlusTree(ctx, world=Rect(0, 0, TEST_WORLD, TEST_WORLD))
    if kind == "kdB":
        return KDBTree(ctx, world=Rect(0, 0, TEST_WORLD, TEST_WORLD))
    if kind == "PMR":
        return PMRQuadtree(ctx, max_depth=TEST_DEPTH, world_size=TEST_WORLD)
    if kind == "PM1":
        return PM1Quadtree(ctx, max_depth=TEST_DEPTH, world_size=TEST_WORLD)
    if kind == "grid":
        return UniformGrid(ctx, granularity=16, world_size=TEST_WORLD)
    raise KeyError(kind)


def build_index(kind: str, segments: List[Segment], page_size=1024, pool_pages=16):
    """Load a segment table and build one index over it."""
    ctx = StorageContext.create(page_size=page_size, pool_pages=pool_pages)
    idx = make_index(kind, ctx)
    for seg_id in ctx.load_segments(segments):
        idx.insert(seg_id)
    return idx


def lattice_map(n: int = 8, pitch: int = 100, jitter: int = 0, seed: int = 0):
    """A planar grid map inside the test world (optionally jittered)."""
    rng = random.Random(seed)

    def pt(i, j):
        x = (i + 1) * pitch + (rng.randint(-jitter, jitter) if jitter else 0)
        y = (j + 1) * pitch + (rng.randint(-jitter, jitter) if jitter else 0)
        return (x, y)

    points = {(i, j): pt(i, j) for i in range(n) for j in range(n)}
    segs = []
    for i in range(n):
        for j in range(n):
            if i + 1 < n:
                a, b = points[(i, j)], points[(i + 1, j)]
                segs.append(Segment(a[0], a[1], b[0], b[1]))
            if j + 1 < n:
                a, b = points[(i, j)], points[(i, j + 1)]
                segs.append(Segment(a[0], a[1], b[0], b[1]))
    return segs


def random_planar_segments(rng: random.Random, n_cells: int = 6) -> List[Segment]:
    """A random planar subset of a jittered lattice (shared-endpoint only)."""
    pitch = TEST_WORLD // (n_cells + 2)
    jitter = pitch // 4
    points = {}
    for i in range(n_cells):
        for j in range(n_cells):
            points[(i, j)] = (
                (i + 1) * pitch + rng.randint(-jitter, jitter),
                (j + 1) * pitch + rng.randint(-jitter, jitter),
            )
    segs = []
    for i in range(n_cells):
        for j in range(n_cells):
            for di, dj in ((1, 0), (0, 1)):
                i2, j2 = i + di, j + dj
                if i2 < n_cells and j2 < n_cells and rng.random() < 0.7:
                    a, b = points[(i, j)], points[(i2, j2)]
                    segs.append(Segment(a[0], a[1], b[0], b[1]))
    if not segs:  # ensure non-empty
        a, b = points[(0, 0)], points[(1, 0)]
        segs.append(Segment(a[0], a[1], b[0], b[1]))
    return segs


# ----------------------------------------------------------------------
# Brute-force oracles
# ----------------------------------------------------------------------
def oracle_at_point(segments: List[Segment], p: Point) -> List[int]:
    return [i for i, s in enumerate(segments) if s.has_endpoint(p)]


def oracle_in_window(segments: List[Segment], w: Rect) -> List[int]:
    return [i for i, s in enumerate(segments) if s.intersects_rect(w)]


def oracle_nearest_dist2(segments: List[Segment], p: Point) -> float:
    return min(s.distance2_to_point(p) for s in segments)


@pytest.fixture(params=ALL_STRUCTURES)
def any_structure(request):
    """Parametrize a test over every index structure."""
    return request.param


@pytest.fixture()
def lock_sanitizer():
    """Run one test under the runtime lock-order sanitizer.

    Enables :data:`repro.sanitize.SANITIZER` for the test's duration and
    asserts at teardown that the test's schedule produced **no potential
    deadlock** -- i.e. the global lock-ordering graph stayed acyclic.
    Suites whose value is concurrency coverage (crash injection, the
    sharded service) opt in module-wide with
    ``pytestmark = pytest.mark.usefixtures("lock_sanitizer")``.
    """
    from repro.sanitize import SANITIZER

    SANITIZER.reset()
    SANITIZER.enable()
    yield SANITIZER
    report = SANITIZER.report()
    text = SANITIZER.format_report()
    SANITIZER.disable()
    SANITIZER.reset()
    assert report["potential_deadlocks"] == [], text
