"""Tests for the k-d-B-tree variant and the uniform grid."""

import random

import pytest

from repro.core import KDBTree, RPlusTree, UniformGrid
from repro.core.queries import nearest_segment, segments_at_point, window_query
from repro.geometry import Point, Rect, Segment
from repro.storage import StorageContext

from tests.conftest import (
    TEST_WORLD,
    lattice_map,
    oracle_at_point,
    oracle_in_window,
    oracle_nearest_dist2,
    random_planar_segments,
)

WORLD = Rect(0, 0, TEST_WORLD, TEST_WORLD)


def build_kdb(segments, **kw):
    ctx = StorageContext.create()
    idx = KDBTree(ctx, world=WORLD, **kw)
    for sid in ctx.load_segments(segments):
        idx.insert(sid)
    return idx


def build_grid(segments, granularity=16):
    ctx = StorageContext.create()
    idx = UniformGrid(ctx, granularity=granularity, world_size=TEST_WORLD)
    for sid in ctx.load_segments(segments):
        idx.insert(sid)
    return idx


class TestKDB:
    def test_same_build_as_hybrid(self):
        """The k-d-B variant shares the hybrid's partition: same pages."""
        segs = lattice_map(n=10, pitch=90)
        kdb = build_kdb(segs, capacity=10)
        ctx = StorageContext.create()
        rplus = RPlusTree(ctx, world=WORLD, capacity=10)
        for sid in ctx.load_segments(segs):
            rplus.insert(sid)
        assert kdb.page_count() == rplus.page_count()
        assert kdb.entry_count() == rplus.entry_count()
        kdb.check_invariants()

    def test_point_query_correct_but_more_candidates(self):
        """No leaf MBRs: correctness holds, candidate counts grow."""
        segs = lattice_map(n=10, pitch=90)
        kdb = build_kdb(segs, capacity=10)
        ctx = StorageContext.create()
        rplus = RPlusTree(ctx, world=WORLD, capacity=10)
        for sid in ctx.load_segments(segs):
            rplus.insert(sid)

        p = Point(segs[42].x1, segs[42].y1)
        kdb_cands = kdb.candidate_ids_at_point(p)
        rplus_cands = rplus.candidate_ids_at_point(p)
        assert set(kdb_cands) >= set(rplus_cands)
        assert len(kdb_cands) >= len(rplus_cands)
        assert set(segments_at_point(kdb, p)) == set(oracle_at_point(segs, p))

    def test_more_segment_comps_than_hybrid(self):
        """Paper: point search is slightly slower without leaf MBRs."""
        segs = lattice_map(n=10, pitch=90)
        kdb = build_kdb(segs, capacity=10)
        ctx = StorageContext.create()
        rplus = RPlusTree(ctx, world=WORLD, capacity=10)
        for sid in ctx.load_segments(segs):
            rplus.insert(sid)

        total_kdb = total_rplus = 0
        for s in segs[:40]:
            b = kdb.ctx.counters.segment_comps
            segments_at_point(kdb, s.start)
            total_kdb += kdb.ctx.counters.segment_comps - b
            b = rplus.ctx.counters.segment_comps
            segments_at_point(rplus, s.start)
            total_rplus += rplus.ctx.counters.segment_comps - b
        assert total_kdb > total_rplus

    def test_window_and_nearest_correct(self):
        rng = random.Random(51)
        segs = random_planar_segments(rng)
        kdb = build_kdb(segs, capacity=6)
        w = Rect(100, 100, 500, 500)
        assert set(window_query(kdb, w)) == set(oracle_in_window(segs, w))
        p = Point(333, 444)
        sid, d2 = nearest_segment(kdb, p)
        assert d2 == pytest.approx(oracle_nearest_dist2(segs, p))


class TestUniformGrid:
    def test_bad_granularity(self):
        ctx = StorageContext.create()
        with pytest.raises(ValueError):
            UniformGrid(ctx, granularity=10)
        with pytest.raises(ValueError):
            UniformGrid(ctx, granularity=0)

    def test_cells_of_segment_covers_path(self):
        ctx = StorageContext.create()
        grid = UniformGrid(ctx, granularity=8, world_size=TEST_WORLD)
        cells = grid._cells_of_segment(Segment(0, 0, 1023, 1023))
        assert len(cells) >= 8  # the diagonal crosses every level
        assert (0, 0) in cells and (7, 7) in cells
        # An axis-aligned segment in one row crosses only that row.
        cells = grid._cells_of_segment(Segment(10, 10, 1000, 10))
        assert all(cy == 0 for _, cy in cells)
        assert len(cells) == 8

    def test_queries_match_oracles(self):
        rng = random.Random(52)
        segs = random_planar_segments(rng)
        grid = build_grid(segs)
        for s in segs[:20]:
            p = s.start
            assert set(segments_at_point(grid, p)) == set(oracle_at_point(segs, p))
        w = Rect(200, 150, 640, 700)
        assert set(window_query(grid, w)) == set(oracle_in_window(segs, w))
        p = Point(511, 300)
        sid, d2 = nearest_segment(grid, p)
        assert d2 == pytest.approx(oracle_nearest_dist2(segs, p))

    def test_delete(self):
        segs = lattice_map(n=6, pitch=110)
        ctx = StorageContext.create()
        grid = UniformGrid(ctx, granularity=16, world_size=TEST_WORLD)
        ids = ctx.load_segments(segs)
        for sid in ids:
            grid.insert(sid)
        grid.delete(ids[5])
        assert ids[5] not in grid.candidate_ids_in_rect(Rect(0, 0, 1024, 1024))
        grid.check_invariants()
        with pytest.raises(KeyError):
            grid.delete(ids[5])

    def test_invariants(self):
        rng = random.Random(53)
        segs = random_planar_segments(rng)
        grid = build_grid(segs)
        grid.check_invariants()

    def test_skew_wastes_buckets_vs_pmr(self):
        """Section 2: the uniform grid does not adapt to skewed data."""
        # All data in one corner: the PMR only refines there, the grid
        # spends its whole directory regardless.
        segs = [Segment(5 + i, 5, 5 + i, 15) for i in range(0, 60, 3)]
        grid = build_grid(segs, granularity=32)
        from tests.test_pmr import build as build_pmr

        pmr = build_pmr(segs, threshold=4)
        assert len(pmr.leaf_blocks()) < grid.granularity**2
