"""Tests for checkpointed rebalancing: shard split and catch-up."""

import pytest

from repro.data.counties import generate_county
from repro.errors import WalError
from repro.service.server import send_request
from repro.shard import (
    LocalShardSet,
    ShardMap,
    ShardRouter,
    catch_up_shard,
    init_shard_set,
    open_shard,
    split_shard,
)


@pytest.fixture()
def shard_root(tmp_path):
    map_data = generate_county("cecil", scale=0.01)
    root = str(tmp_path / "shards")
    init_shard_set(root, "R+", map_data=map_data, n_shards=3, page_size=2048)
    return root, map_data


class TestSplitOffline:
    def test_split_produces_children_and_bumps_epoch(self, shard_root):
        root, _ = shard_root
        before = ShardMap.load(root)
        result = split_shard(root, "s1")
        after = ShardMap.load(root)
        assert after.epoch == before.epoch + 1
        child_ids = {c["id"] for c in result["children"]}
        assert child_ids == {"s1a", "s1b"}
        assert {s.shard_id for s in after.shards} == {"s0", "s1a", "s1b", "s2"}
        a, b = after.shard("s1a"), after.shard("s1b")
        parent = before.shard("s1")
        assert (a.lo, b.hi) == (parent.lo, parent.hi) and a.hi == b.lo

    def test_children_continue_the_lsn_lineage(self, shard_root):
        root, _ = shard_root
        split_shard(root, "s1")
        lsns = set()
        for shard_id in ("s0", "s1a", "s1b", "s2"):
            _, engine = open_shard(root, shard_id)
            lsns.add(engine.store.last_lsn)
            engine.store.close()
        assert len(lsns) == 1, lsns

    def test_children_tables_are_full_replicas(self, shard_root):
        root, map_data = shard_root
        split_shard(root, "s1")
        for shard_id in ("s1a", "s1b"):
            _, engine = open_shard(root, shard_id)
            assert len(engine.store.index.ctx.segments) == len(
                map_data.segments
            )
            engine.store.close()

    def test_unknown_shard_raises(self, shard_root):
        root, _ = shard_root
        with pytest.raises(KeyError):
            split_shard(root, "nope")


class TestSplitUnderTraffic:
    def test_split_reload_preserves_results(self, shard_root):
        root, map_data = shard_root
        world = map_data.world_size
        with LocalShardSet(root) as shards:
            router = ShardRouter(root)
            router.start_background()
            addr = router.address
            try:
                whole = {"op": "window", "x1": 0, "y1": 0, "x2": world, "y2": world}
                base = send_request(addr, whole)["result"]
                new_id = send_request(
                    addr,
                    {"op": "insert", "x1": 12.0, "y1": 12.0, "x2": 40.0, "y2": 40.0},
                )["result"]
                shards.stop("s1")
                result = split_shard(root, "s1")
                assert result["epoch"] == 2
                shards.start("s1a")
                shards.start("s1b")
                resp = send_request(addr, {"op": "reload"})
                assert resp["ok"] and resp["result"]["epoch"] == 2, resp
                resp = send_request(addr, whole)
                assert resp["ok"], resp
                assert resp["result"] == sorted(set(base) | {new_id})
            finally:
                router.close()


class TestCatchUp:
    def test_heals_partial_mutations(self, shard_root):
        root, map_data = shard_root
        world = map_data.world_size
        with LocalShardSet(root) as shards:
            router = ShardRouter(root)
            router.start_background()
            addr = router.address
            try:
                whole = {"op": "window", "x1": 0, "y1": 0, "x2": world, "y2": world}
                base = send_request(addr, whole)["result"]
                shards.stop("s0")
                resp = send_request(
                    addr,
                    {
                        "op": "insert",
                        "x1": 500.0,
                        "y1": 500.0,
                        "x2": 900.0,
                        "y2": 900.0,
                    },
                )
                assert not resp["ok"], resp
                assert resp["error"]["code"] == "shard_unavailable"
                applied = resp["partial"]["result"]["applied"]
                assert applied and "s0" not in applied
                healed = catch_up_shard(root, "s0")
                assert healed["shard"] == "s0"
                assert healed["caught_up_records"] == 1
                shards.start("s0")
                resp = send_request(addr, whole)
                assert resp["ok"], resp
                assert len(resp["result"]) == len(base) + 1
                resp = send_request(addr, {"op": "check"})
                assert resp["ok"] and resp["result"]["clean"] is True, resp
                stats = send_request(addr, {"op": "stats"})["result"]
                lsns = {
                    stats["shards"][sid]["last_lsn"]
                    for sid in stats["shards"]
                }
                assert len(lsns) == 1, "replicated logs must agree after heal"
            finally:
                router.close()

    def test_noop_when_already_caught_up(self, shard_root):
        root, _ = shard_root
        result = catch_up_shard(root, "s0")
        assert result["caught_up_records"] == 0

    def test_self_donation_refused(self, shard_root):
        root, _ = shard_root
        with pytest.raises(ValueError):
            catch_up_shard(root, "s0", donor="s0")

    def test_donor_checkpointed_past_target_fails_loudly(self, shard_root):
        root, _ = shard_root
        # Apply a mutation to s1 only, then checkpoint s1: the record
        # s0 needs has been folded away, so catch-up must refuse.
        from repro.service.api import parse_request

        _, engine = open_shard(root, "s1")
        engine.execute(
            parse_request(
                {"op": "insert", "x1": 3.0, "y1": 3.0, "x2": 7.0, "y2": 7.0}
            )
        )
        engine.store.checkpoint()
        engine.store.close()
        with pytest.raises(WalError):
            catch_up_shard(root, "s0", donor="s1")
