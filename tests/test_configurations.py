"""Cross-cutting configuration tests: page sizes, pool sizes, policies.

The Figure 6 sweep varies page size (512 B - 4 KiB) and pool size (8-32
pages); these tests pin that every structure stays *correct* under every
configuration, so the sweep measures cost, not bugs.
"""

import random

import pytest

from repro.core import GuttmanRTree, KDBTree, PMRQuadtree, RPlusTree, RStarTree, UniformGrid
from repro.core.queries import nearest_segment, segments_at_point, window_query
from repro.geometry import Point, Rect
from repro.storage import StorageContext
from repro.storage.policies import ClockPolicy, FIFOPolicy

from tests.conftest import (
    TEST_DEPTH,
    TEST_WORLD,
    oracle_at_point,
    oracle_in_window,
    oracle_nearest_dist2,
    random_planar_segments,
)

WORLD = Rect(0, 0, TEST_WORLD, TEST_WORLD)


def _make(kind, ctx):
    if kind == "R*":
        return RStarTree(ctx)
    if kind == "R":
        return GuttmanRTree(ctx)
    if kind == "R+":
        return RPlusTree(ctx, world=WORLD)
    if kind == "kdB":
        return KDBTree(ctx, world=WORLD)
    if kind == "PMR":
        return PMRQuadtree(ctx, max_depth=TEST_DEPTH, world_size=TEST_WORLD)
    if kind == "grid":
        return UniformGrid(ctx, granularity=16, world_size=TEST_WORLD)
    raise KeyError(kind)


@pytest.mark.parametrize("page_size", [512, 1024, 2048, 4096])
@pytest.mark.parametrize("kind", ["R*", "R+", "PMR"])
def test_correct_under_every_page_size(kind, page_size):
    rng = random.Random(page_size)
    segs = random_planar_segments(rng)
    ctx = StorageContext.create(page_size=page_size, pool_pages=16)
    idx = _make(kind, ctx)
    for sid in ctx.load_segments(segs):
        idx.insert(sid)
    idx.check_invariants()

    p = segs[3].start
    assert set(segments_at_point(idx, p)) == set(oracle_at_point(segs, p))
    w = Rect(150, 150, 700, 700)
    assert set(window_query(idx, w)) == set(oracle_in_window(segs, w))
    q = Point(500, 280)
    assert nearest_segment(idx, q)[1] == pytest.approx(
        oracle_nearest_dist2(segs, q)
    )


@pytest.mark.parametrize("pool_pages", [1, 2, 4, 64])
def test_correct_under_tiny_and_big_pools(pool_pages):
    """A one-page pool thrashes but must never corrupt anything."""
    rng = random.Random(pool_pages)
    segs = random_planar_segments(rng)
    ctx = StorageContext.create(pool_pages=pool_pages)
    idx = RStarTree(ctx)
    for sid in ctx.load_segments(segs):
        idx.insert(sid)
    idx.check_invariants()
    w = Rect(100, 100, 800, 800)
    assert set(window_query(idx, w)) == set(oracle_in_window(segs, w))


@pytest.mark.parametrize("policy_cls", [FIFOPolicy, ClockPolicy])
@pytest.mark.parametrize("kind", ["R+", "PMR"])
def test_correct_under_alternate_replacement_policies(kind, policy_cls):
    rng = random.Random(99)
    segs = random_planar_segments(rng)
    ctx = StorageContext.create(policy=policy_cls())
    idx = _make(kind, ctx)
    for sid in ctx.load_segments(segs):
        idx.insert(sid)
    idx.check_invariants()
    p = segs[0].end
    assert set(segments_at_point(idx, p)) == set(oracle_at_point(segs, p))


def test_smaller_pages_mean_more_pages():
    rng = random.Random(7)
    segs = random_planar_segments(rng, n_cells=6)

    def pages(page_size):
        ctx = StorageContext.create(page_size=page_size)
        idx = RStarTree(ctx)
        for sid in ctx.load_segments(segs):
            idx.insert(sid)
        return idx.page_count()

    assert pages(512) >= pages(2048)


def test_page_size_changes_capacities():
    for page_size, expected_m in ((512, 24), (1024, 50), (2048, 101)):
        ctx = StorageContext.create(page_size=page_size)
        idx = RStarTree(ctx)
        assert idx.capacity == expected_m

    for page_size, expected in ((512, 56), (1024, 120), (2048, 248)):
        ctx = StorageContext.create(page_size=page_size)
        pmr = PMRQuadtree(ctx)
        assert pmr.btree.leaf_capacity == expected


def test_polygon_area_helper():
    from repro.core.queries import enclosing_polygon
    from tests.conftest import build_index, lattice_map

    segs = lattice_map(n=4, pitch=150)
    idx = build_index("R*", segs)
    r = enclosing_polygon(idx, Point(225, 225))
    assert r.area() == pytest.approx(150 * 150)
