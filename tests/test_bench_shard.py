"""Tests for the routed perf baseline (``bench --routed``)."""

import copy

import pytest

from repro.bench.compare import EXIT_INCOMPARABLE, EXIT_OK, compare_records
from repro.bench.runner import BENCH_KIND
from repro.bench.shard import (
    SHARD_BENCH_KIND,
    SHARD_BENCH_STRUCTURES,
    SHARD_BENCH_WORKLOADS,
    run_shard_bench,
    validate_shard_record,
)
from repro.metric_names import PAPER_METRICS

TINY = {"scale": 0.01, "n_queries": 3, "n_shards": 2}


@pytest.fixture(scope="module")
def record():
    return run_shard_bench(TINY)


class TestRoutedRecord:
    def test_record_validates(self, record):
        assert validate_shard_record(record) == []
        assert record["kind"] == SHARD_BENCH_KIND

    def test_every_structure_and_workload_present(self, record):
        assert set(record["structures"]) == set(SHARD_BENCH_STRUCTURES)
        for entry in record["structures"].values():
            assert set(entry["workloads"]) == set(SHARD_BENCH_WORKLOADS)
            assert entry["build"]["shards"] == TINY["n_shards"]

    def test_totals_are_workload_sums(self, record):
        for entry in record["structures"].values():
            for metric in PAPER_METRICS:
                assert entry["totals"][metric] == sum(
                    entry["workloads"][w][metric]
                    for w in SHARD_BENCH_WORKLOADS
                )

    def test_workloads_actually_ran(self, record):
        for entry in record["structures"].values():
            for w in SHARD_BENCH_WORKLOADS:
                assert entry["workloads"][w]["queries"] > 0
            # The read workloads must touch the disk counters.
            assert entry["totals"]["disk_accesses"] > 0

    def test_self_comparison_is_clean_at_zero_tolerance(self, record):
        code, lines = compare_records(record, record, tolerance=0.0)
        assert code == EXIT_OK, "\n".join(lines)


class TestGateKindSafety:
    def test_cross_kind_comparison_refused(self, record):
        code, lines = compare_records({"kind": BENCH_KIND}, record)
        assert code == EXIT_INCOMPARABLE
        assert any("kind mismatch" in line for line in lines)

    def test_unknown_kind_refused(self):
        bogus = {"kind": "repro-mystery-bench"}
        code, lines = compare_records(bogus, dict(bogus))
        assert code == EXIT_INCOMPARABLE

    def test_regression_detected(self, record):
        worse = copy.deepcopy(record)
        name = SHARD_BENCH_STRUCTURES[0]
        entry = worse["structures"][name]
        entry["totals"]["disk_accesses"] = (
            entry["totals"]["disk_accesses"] * 10 + 100
        )
        code, lines = compare_records(record, worse, tolerance=0.10)
        assert code == 1
        assert any("REGRESSION" in line for line in lines)

    def test_missing_workload_fails_validation(self, record):
        broken = copy.deepcopy(record)
        name = SHARD_BENCH_STRUCTURES[0]
        del broken["structures"][name]["workloads"]["mutate"]
        assert any(
            "mutate" in problem for problem in validate_shard_record(broken)
        )
