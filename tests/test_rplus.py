"""Tests for the hybrid R+-tree / k-d-B-tree."""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.rplus import RPlusTree
from repro.geometry import Point, Rect, Segment
from repro.storage import StorageContext

from tests.conftest import (
    TEST_WORLD,
    lattice_map,
    oracle_at_point,
    oracle_in_window,
    random_planar_segments,
)

WORLD = Rect(0, 0, TEST_WORLD, TEST_WORLD)


def build(segments, capacity=None, page_size=1024):
    ctx = StorageContext.create(page_size=page_size)
    idx = RPlusTree(ctx, world=WORLD, capacity=capacity)
    for sid in ctx.load_segments(segments):
        idx.insert(sid)
    return idx


class TestBasics:
    def test_empty(self):
        ctx = StorageContext.create()
        idx = RPlusTree(ctx, world=WORLD)
        assert idx.entry_count() == 0
        assert idx.candidate_ids_at_point(Point(5, 5)) == []
        idx.check_invariants()

    def test_single_segment(self):
        idx = build([Segment(10, 10, 200, 40)])
        assert idx.entry_count() == 1
        assert idx.segment_count() == 1
        assert idx.candidate_ids_at_point(Point(10, 10)) == [0]
        idx.check_invariants()

    def test_segment_duplicated_across_leaves_after_split(self):
        """A long segment must appear in every leaf region it crosses."""
        # Many short verticals force splits; one long horizontal crosses all.
        segs = [Segment(i * 10 + 5, 100, i * 10 + 5, 200) for i in range(80)]
        segs.append(Segment(0, 150, 900, 150))
        idx = build(segs, capacity=8)
        assert idx.height() >= 2
        assert idx.entry_count() > len(segs)  # duplication happened
        idx.check_invariants()

    def test_world_default(self):
        ctx = StorageContext.create()
        idx = RPlusTree(ctx)
        assert idx.world == Rect(0, 0, 16384, 16384)

    def test_capacity_too_small(self):
        ctx = StorageContext.create()
        with pytest.raises(ValueError):
            RPlusTree(ctx, capacity=2)


class TestDisjointness:
    def test_invariants_on_lattice(self):
        idx = build(lattice_map(n=10, pitch=90), capacity=10)
        idx.check_invariants()  # includes tiling + disjointness checks

    def test_point_query_single_path_when_interior(self):
        """A point strictly inside one region descends a single path."""
        segs = lattice_map(n=10, pitch=90)
        idx = build(segs, capacity=10)
        ctx = idx.ctx
        # Interior, off the lattice: not on any split line with high odds.
        before = ctx.counters.bbox_comps
        idx.candidate_ids_at_point(Point(137.5, 233.5))
        # Visited nodes = height (single path); each charges <= capacity.
        assert ctx.counters.bbox_comps - before <= idx.height() * (idx.capacity + 1)

    def test_downward_split_cascade(self):
        """Internal splits must propagate the cut to straddling children."""
        rng = random.Random(99)
        # Dense enough to force internal splits with a small capacity.
        segs = lattice_map(n=14, pitch=65, jitter=8, seed=4)
        idx = build(segs, capacity=6)
        assert idx.height() >= 3
        idx.check_invariants()


class TestQueries:
    def test_point_candidates_match_oracle(self):
        rng = random.Random(21)
        segs = random_planar_segments(rng)
        idx = build(segs)
        for s in segs:
            for p in (s.start, s.end):
                got = set(idx.candidate_ids_at_point(p))
                assert got >= set(oracle_at_point(segs, p))

    def test_window_candidates_match_oracle(self):
        rng = random.Random(22)
        segs = random_planar_segments(rng)
        idx = build(segs, capacity=8)
        for _ in range(30):
            x, y = rng.randint(0, 900), rng.randint(0, 900)
            w = Rect(x, y, x + rng.randint(5, 150), y + rng.randint(5, 150))
            got = set(idx.candidate_ids_in_rect(w))
            assert got >= set(oracle_in_window(segs, w))


class TestDeletion:
    def test_delete_removes_all_copies(self):
        segs = [Segment(i * 10 + 5, 100, i * 10 + 5, 200) for i in range(80)]
        long_seg = Segment(0, 150, 900, 150)
        segs.append(long_seg)
        ctx = StorageContext.create()
        idx = RPlusTree(ctx, world=WORLD, capacity=8)
        ids = ctx.load_segments(segs)
        for sid in ids:
            idx.insert(sid)
        long_id = ids[-1]
        idx.delete(long_id)
        assert long_id not in idx.candidate_ids_at_point(Point(0, 150))
        assert long_id not in idx.candidate_ids_in_rect(Rect(0, 0, 1000, 1000))
        idx.check_invariants()

    def test_delete_everything(self):
        segs = lattice_map(n=6, pitch=110)
        ctx = StorageContext.create()
        idx = RPlusTree(ctx, world=WORLD, capacity=8)
        ids = ctx.load_segments(segs)
        for sid in ids:
            idx.insert(sid)
        for sid in ids:
            idx.delete(sid)
        assert idx.entry_count() == 0
        assert idx.segment_count() == 0

    def test_delete_missing_raises(self):
        ctx = StorageContext.create()
        idx = RPlusTree(ctx, world=WORLD)
        ids = ctx.load_segments([Segment(0, 0, 5, 5), Segment(10, 10, 20, 20)])
        idx.insert(ids[0])
        with pytest.raises(KeyError):
            idx.delete(ids[1])


class TestPathological:
    def test_unsplittable_leaf_stays_overfull_but_searchable(self):
        """Identical overlapping segments cannot be separated by any line."""
        base = [Segment(100, 100, 300, 300) for _ in range(3)]
        # Distinct but fully overlapping extents spanning the same span.
        segs = [Segment(100, 100 + i, 300, 300 + i) for i in range(12)]
        ctx = StorageContext.create()
        idx = RPlusTree(ctx, world=WORLD, capacity=6)
        ids = ctx.load_segments(segs)
        for sid in ids:
            idx.insert(sid)
        # All segments still found.
        got = set(idx.candidate_ids_in_rect(Rect(0, 0, 1000, 1000)))
        assert got == set(ids)
        # Overflow pages are charged in the page count.
        assert idx.page_count() >= 2

    def test_overflow_accounting(self):
        segs = [Segment(100, 100 + i, 300, 300 + i) for i in range(20)]
        ctx = StorageContext.create()
        idx = RPlusTree(ctx, world=WORLD, capacity=6)
        for sid in ctx.load_segments(segs):
            idx.insert(sid)
        # Whatever the shape, bytes_used must cover all entries.
        assert idx.page_count() * idx.capacity >= idx.entry_count() // 2


class TestSplitRules:
    def test_bad_rule_rejected(self):
        ctx = StorageContext.create()
        with pytest.raises(ValueError):
            RPlusTree(ctx, split_rule="widest-first")

    def test_median_rule_correct(self):
        rng = random.Random(77)
        segs = random_planar_segments(rng)
        ctx = StorageContext.create()
        idx = RPlusTree(ctx, world=WORLD, capacity=8, split_rule="median")
        for sid in ctx.load_segments(segs):
            idx.insert(sid)
        idx.check_invariants()
        got = set(idx.candidate_ids_in_rect(Rect(0, 0, TEST_WORLD, TEST_WORLD)))
        assert got == set(range(len(segs)))

    def test_min_cut_duplicates_less(self):
        """The paper's rule minimizes cut segments, so it stores fewer
        duplicated entries than blind median splitting."""
        rng = random.Random(78)
        segs = random_planar_segments(rng, n_cells=6)

        def entries(rule):
            ctx = StorageContext.create()
            idx = RPlusTree(ctx, world=WORLD, capacity=8, split_rule=rule)
            for sid in ctx.load_segments(segs):
                idx.insert(sid)
            return idx.entry_count()

        assert entries("min_cut") <= entries("median")


class TestPropertyBased:
    @settings(deadline=None, max_examples=25)
    @given(st.integers(0, 10_000))
    def test_random_maps(self, seed):
        rng = random.Random(seed)
        segs = random_planar_segments(rng, n_cells=5)
        idx = build(segs, capacity=6)
        idx.check_invariants()
        w = Rect(100, 100, 600, 600)
        got = set(idx.candidate_ids_in_rect(w))
        assert got >= set(oracle_in_window(segs, w))

    @settings(deadline=None, max_examples=10)
    @given(st.integers(0, 10_000))
    def test_random_delete_half(self, seed):
        rng = random.Random(seed)
        segs = random_planar_segments(rng, n_cells=5)
        ctx = StorageContext.create()
        idx = RPlusTree(ctx, world=WORLD, capacity=6)
        ids = ctx.load_segments(segs)
        for sid in ids:
            idx.insert(sid)
        victims = ids[:: 2]
        for sid in victims:
            idx.delete(sid)
        survivors = set(ids) - set(victims)
        got = set(idx.candidate_ids_in_rect(Rect(0, 0, 1024, 1024)))
        assert got == survivors
