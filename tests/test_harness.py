"""Tests for the experiment harness (small, fast configurations)."""

import pytest

from repro.data import generate_county
from repro.harness import (
    STRUCTURE_FACTORIES,
    WORKLOAD_NAMES,
    build_structure,
    figure6_sweep,
    format_figure6,
    format_normalized,
    format_occupancy,
    format_table1,
    format_table2,
    normalized_ranges,
    occupancy_report,
    pmr_threshold_sweep,
)
from repro.harness.build_stats import build_row, table1
from repro.harness.normalized import collect_all_counties
from repro.harness.query_stats import map_query_stats
from repro.harness.sweeps import sweep_as_grid
from repro.harness.workloads import QueryWorkloads, run_workloads


@pytest.fixture(scope="module")
def tiny_map():
    return generate_county("cecil", scale=0.015)


@pytest.fixture(scope="module")
def tiny_stats(tiny_map):
    return map_query_stats(tiny_map, n_queries=15, window_area_fraction=0.005)


class TestBuildStructure:
    def test_unknown_structure(self, tiny_map):
        with pytest.raises(KeyError):
            build_structure("btree-of-doom", tiny_map)

    @pytest.mark.parametrize("name", sorted(STRUCTURE_FACTORIES))
    def test_every_factory_builds(self, name, tiny_map):
        built = build_structure(name, tiny_map)
        assert built.index.entry_count() >= len(tiny_map)
        assert built.build_metrics.disk_reads >= 0
        assert built.size_kbytes > 0
        assert built.build_seconds > 0

    def test_metrics_isolated_per_structure(self, tiny_map):
        a = build_structure("PMR", tiny_map)
        b = build_structure("R*", tiny_map)
        assert a.ctx is not b.ctx
        assert a.ctx.counters is not b.ctx.counters


class TestBuildStats:
    def test_build_row_contains_all_structures(self, tiny_map):
        row = build_row(tiny_map, structures=("R*", "PMR"))
        assert set(row.size_kbytes) == {"R*", "PMR"}
        assert row.segments == len(tiny_map)

    def test_table1_small(self):
        rows = table1(scale=0.01, counties=["cecil", "charles"])
        assert [r.county for r in rows] == ["cecil", "charles"]
        text = format_table1(rows)
        assert "cecil" in text and "disk accesses" in text

    def test_storage_ordering_claim(self, tiny_map):
        """Paper: R+ and PMR need more storage than R*."""
        row = build_row(tiny_map)
        assert row.size_kbytes["R+"] > row.size_kbytes["R*"]


class TestWorkloads:
    def test_all_workloads_present(self, tiny_stats):
        for s, by_workload in tiny_stats.items():
            assert set(by_workload) == set(WORKLOAD_NAMES)

    def test_stats_positive(self, tiny_stats):
        for s, by_workload in tiny_stats.items():
            for w, st_ in by_workload.items():
                assert st_.queries == 15
                assert st_.disk_accesses >= 0
                assert st_.segment_comps > 0

    def test_point2_about_twice_point1(self, tiny_stats):
        """Query 2 is two point queries; PMR bucket comps say so exactly."""
        pmr = tiny_stats["PMR"]
        assert pmr["Point1"].bbox_comps == pytest.approx(1.0)
        assert pmr["Point2"].bbox_comps == pytest.approx(2.0)

    def test_pmr_bucket_comps_orders_of_magnitude_below_rtrees(self, tiny_stats):
        """The Figure 7 footnote: PMR bucket comps are not comparable."""
        for w in WORKLOAD_NAMES:
            assert tiny_stats["PMR"][w].bbox_comps * 5 < tiny_stats["R*"][w].bbox_comps

    def test_format_table2(self, tiny_stats):
        text = format_table2(tiny_stats, county="cecil")
        assert "cecil county" in text
        assert "Point1" in text and "Range" in text

    def test_workloads_shared_across_structures(self, tiny_map):
        built_pmr = build_structure("PMR", tiny_map)
        w = QueryWorkloads.generate(tiny_map, built_pmr.index, 5, seed=7)
        w2 = QueryWorkloads.generate(tiny_map, built_pmr.index, 5, seed=7)
        assert w.one_stage == w2.one_stage
        assert w.endpoint_queries == w2.endpoint_queries


class TestNormalized:
    def test_normalized_ranges_pmr_baseline(self, tiny_map):
        per_county = {"cecil": map_query_stats(tiny_map, n_queries=10)}
        ranges = normalized_ranges(per_county, "disk_accesses")
        assert ranges, "no ranges produced"
        for r in ranges:
            assert r.minimum <= r.average <= r.maximum
            assert r.structure in ("R+", "R*")

    def test_figure7_variant(self, tiny_map):
        per_county = {"cecil": map_query_stats(tiny_map, n_queries=10)}
        ranges = normalized_ranges(
            per_county, "bbox_comps", structures=("R+",), baseline="R*"
        )
        text = format_normalized(ranges, "Figure 7", baseline="R*")
        assert "R+" in text

    def test_collect_all_counties_subset(self):
        per_county = collect_all_counties(
            scale=0.01, n_queries=5, counties=["cecil"]
        )
        assert set(per_county) == {"cecil"}


class TestSweeps:
    def test_figure6_shapes(self, tiny_map):
        cells = figure6_sweep(
            map_data=tiny_map,
            page_sizes=(512, 1024),
            pool_pages_options=(8, 16),
        )
        assert len(cells) == 2 * 2 * 2
        grid = sweep_as_grid(cells)
        assert set(grid) == {"R+", "PMR"}
        for s, values in grid.items():
            # Paper: accesses decrease with page size and pool size.
            assert values[(1024, 16)] <= values[(512, 8)]
        text = format_figure6(cells)
        assert "512B" in text and "PMR" in text


class TestOccupancy:
    def test_report(self, tiny_map):
        report = occupancy_report(map_data=tiny_map, thresholds=(2, 8, 32))
        assert 0 < report.rstar_leaf_occupancy <= 50
        assert 0 < report.rplus_leaf_occupancy <= 50
        assert set(report.pmr_bucket_occupancy) == {2, 8, 32}
        # Paper: bucket occupancy grows with the threshold...
        assert report.pmr_bucket_occupancy[32] > report.pmr_bucket_occupancy[2]
        # ...and storage shrinks.
        assert report.pmr_size_kbytes[32] <= report.pmr_size_kbytes[2]
        assert report.equalizing_threshold() in (2, 8, 32)
        text = format_occupancy(report)
        assert "threshold" in text

    def test_threshold_sweep(self, tiny_map):
        rows = pmr_threshold_sweep(tiny_map, thresholds=(2, 16))
        assert rows[0]["threshold"] == 2
        assert rows[1]["buckets"] <= rows[0]["buckets"]
