"""Tests for TIGER Type 2 shape points and chain assembly."""

import pytest

from repro.data import read_chains, read_type1, read_type2, write_type1, write_type2
from repro.data.tiger import TigerFormatError
from repro.geometry import Segment


@pytest.fixture
def chain_files(tmp_path):
    """One straight chain (TLID 1) and one with 12 shape points (TLID 2,
    spanning two Type 2 records)."""
    rt1 = tmp_path / "c.rt1"
    rt2 = tmp_path / "c.rt2"
    write_type1(
        rt1,
        [
            Segment(-76.50, 38.90, -76.49, 38.91),  # TLID 1
            Segment(-76.48, 38.92, -76.40, 38.99),  # TLID 2
        ],
    )
    shape_points = [(-76.48 + i * 0.006, 38.92 + i * 0.005) for i in range(1, 13)]
    write_type2(rt2, {2: shape_points})
    return rt1, rt2, shape_points


class TestType2:
    def test_roundtrip(self, chain_files):
        rt1, rt2, shape_points = chain_files
        shapes = read_type2(rt2)
        assert set(shapes) == {2}
        assert len(shapes[2]) == 12
        for (glon, glat), (elon, elat) in zip(shapes[2], shape_points):
            assert glon == pytest.approx(elon, abs=1e-6)
            assert glat == pytest.approx(elat, abs=1e-6)

    def test_multi_record_order(self, tmp_path):
        # 25 points: three RTSQ records; order must be preserved.
        pts = [(-76.0 + i * 0.001, 38.0 + i * 0.001) for i in range(25)]
        rt2 = tmp_path / "m.rt2"
        n = write_type2(rt2, {7: pts})
        assert n == 3
        got = read_type2(rt2)[7]
        assert len(got) == 25
        assert got[0][0] == pytest.approx(-76.0, abs=1e-6)
        assert got[-1][0] == pytest.approx(-76.0 + 24 * 0.001, abs=1e-6)

    def test_short_record_raises(self, tmp_path):
        rt2 = tmp_path / "bad.rt2"
        rt2.write_text("2 short\n")
        with pytest.raises(TigerFormatError):
            read_type2(rt2)

    def test_other_types_skipped(self, chain_files, tmp_path):
        _, rt2, _ = chain_files
        with open(rt2, "a") as f:
            f.write("1" + " " * 227 + "\n")
        shapes = read_type2(rt2)
        assert set(shapes) == {2}


class TestChainAssembly:
    def test_straight_chain_is_single_segment(self, chain_files):
        rt1, rt2, _ = chain_files
        segments = read_chains(rt1, rt2)
        tl1 = [s for s in segments if s.start == (-76.50, 38.90)]
        assert len(tl1) == 1

    def test_shaped_chain_becomes_polyline(self, chain_files):
        rt1, rt2, shape_points = chain_files
        segments = read_chains(rt1, rt2)
        # TLID 2: endpoints + 12 shape points -> 13 segments; TLID 1 -> 1.
        assert len(segments) == 14
        # The polyline is connected end to end.
        tl2 = segments[1:]
        for a, b in zip(tl2, tl2[1:]):
            assert a.end == b.start
        assert tl2[0].start == (-76.48, 38.92)
        assert tl2[-1].end == pytest.approx((-76.40, 38.99))

    def test_without_rt2_matches_type1(self, chain_files):
        rt1, _, _ = chain_files
        assert read_chains(rt1) == read_type1(rt1)

    def test_chain_pipeline_to_index(self, chain_files):
        """Full path: chains -> normalize -> index -> query."""
        from repro.core import RStarTree
        from repro.core.queries import segments_at_point
        from repro.data import normalize_segments
        from repro.geometry import Point
        from repro.storage import StorageContext

        rt1, rt2, _ = chain_files
        segments = normalize_segments(read_chains(rt1, rt2))
        ctx = StorageContext.create()
        idx = RStarTree(ctx)
        for sid in ctx.load_segments(segments):
            idx.insert(sid)
        idx.check_invariants()
        # Interior chain vertices connect exactly two segments.
        counts = {}
        for s in segments:
            for p in s.endpoints():
                counts[p] = counts.get(p, 0) + 1
        interior = [p for p, c in counts.items() if c == 2]
        assert interior
        got = segments_at_point(idx, Point(*interior[0]))
        assert len(got) == 2
