"""Tests for the PM1/PM2/PM3 quadtrees and their contrast with the PMR."""

import random

import pytest

from repro.core import PM1Quadtree, PM2Quadtree, PM3Quadtree, PMRQuadtree
from repro.core.queries import (
    nearest_segment,
    segments_at_point,
    window_query,
)
from repro.geometry import Point, Rect, Segment
from repro.storage import StorageContext

from tests.conftest import (
    TEST_DEPTH,
    TEST_WORLD,
    lattice_map,
    oracle_at_point,
    oracle_in_window,
    oracle_nearest_dist2,
    random_planar_segments,
)

PM_CLASSES = [PM1Quadtree, PM2Quadtree, PM3Quadtree]


def build(cls, segments, max_depth=TEST_DEPTH):
    ctx = StorageContext.create()
    idx = cls(ctx, max_depth=max_depth, world_size=TEST_WORLD)
    for sid in ctx.load_segments(segments):
        idx.insert(sid)
    return idx


@pytest.mark.parametrize("cls", PM_CLASSES)
class TestPMBasics:
    def test_empty(self, cls):
        ctx = StorageContext.create()
        idx = cls(ctx, max_depth=TEST_DEPTH, world_size=TEST_WORLD)
        assert idx.entry_count() == 0
        idx.check_invariants()

    def test_single_segment_no_split(self, cls):
        idx = build(cls, [Segment(100, 100, 400, 300)])
        assert len(idx.leaf_blocks()) == 1
        idx.check_invariants()

    def test_two_disjoint_segments_split(self, cls):
        # Two far-apart segments, 4 distinct vertices in one block:
        # every PM variant must decompose.
        idx = build(cls, [Segment(100, 100, 200, 110), Segment(800, 800, 900, 790)])
        assert len(idx.leaf_blocks()) > 1
        idx.check_invariants()

    def test_fan_around_one_vertex(self, cls):
        """A star of segments from one hub: PM1 separates the far
        endpoints, but the hub block itself stays legal everywhere."""
        hub = Point(512, 512)
        spokes = [
            Segment(hub.x, hub.y, 900, 512),
            Segment(hub.x, hub.y, 512, 900),
            Segment(hub.x, hub.y, 130, 512),
            Segment(hub.x, hub.y, 512, 130),
            Segment(hub.x, hub.y, 880, 880),
        ]
        idx = build(cls, spokes)
        idx.check_invariants()
        assert set(segments_at_point(idx, hub)) == set(range(len(spokes)))

    def test_queries_match_oracle(self, cls):
        rng = random.Random(17)
        segs = random_planar_segments(rng, n_cells=4)
        idx = build(cls, segs)
        idx.check_invariants()
        for s in segs[:10]:
            got = set(segments_at_point(idx, s.start))
            assert got == set(oracle_at_point(segs, s.start))
        w = Rect(150, 150, 760, 600)
        assert set(window_query(idx, w)) == set(oracle_in_window(segs, w))
        p = Point(333, 617)
        assert nearest_segment(idx, p)[1] == pytest.approx(
            oracle_nearest_dist2(segs, p)
        )

    def test_delete_merges_back(self, cls):
        segs = [Segment(100, 100, 200, 110), Segment(800, 800, 900, 790)]
        ctx = StorageContext.create()
        idx = cls(ctx, max_depth=TEST_DEPTH, world_size=TEST_WORLD)
        ids = ctx.load_segments(segs)
        for sid in ids:
            idx.insert(sid)
        assert len(idx.leaf_blocks()) > 1
        idx.delete(ids[1])
        idx.check_invariants()
        # One segment left: the criteria hold at the root again.
        assert len(idx.leaf_blocks()) == 1

    def test_max_depth_tolerates_violations(self, cls):
        # Two parallel segments one pixel apart: unresolvable at depth 2.
        segs = [Segment(10, 10, 200, 10), Segment(10, 11, 200, 11)]
        ctx = StorageContext.create()
        idx = cls(ctx, max_depth=2, world_size=TEST_WORLD)
        for sid in ctx.load_segments(segs):
            idx.insert(sid)
        idx.check_invariants()  # max-depth blocks are exempt
        assert idx.depth() <= 2


class TestFamilyOrdering:
    def test_granularity_pm1_ge_pm2_ge_pm3(self):
        rng = random.Random(23)
        segs = random_planar_segments(rng, n_cells=5)
        blocks = {
            cls.__name__: len(build(cls, segs).leaf_blocks())
            for cls in PM_CLASSES
        }
        assert blocks["PM1Quadtree"] >= blocks["PM2Quadtree"] >= blocks["PM3Quadtree"]

    def test_pm2_accepts_vertexless_fan_fragments(self):
        """Edges of one fan crossing a vertexless block: PM2 legal,
        PM1 must keep splitting."""
        hub = Point(512, 512)
        # Many spokes whose far ends cluster: blocks far from the hub see
        # several q-edges of the same fan with no vertex inside.
        spokes = [Segment(hub.x, hub.y, 1000, 400 + 40 * i) for i in range(6)]
        pm1 = build(PM1Quadtree, spokes)
        pm2 = build(PM2Quadtree, spokes)
        pm1.check_invariants()
        pm2.check_invariants()
        assert len(pm2.leaf_blocks()) < len(pm1.leaf_blocks())

    def test_pmr_avoids_pm1_pathology(self):
        """Section 3's motivation for the split-once rule: close parallel
        lines make the PM1 decompose deeply, the PMR does not."""
        segs = [Segment(100, 300 + 2 * i, 900, 300 + 2 * i) for i in range(5)]
        pmr = build_pmr(segs)
        pm1 = build(PM1Quadtree, segs)
        assert pm1.depth() > pmr.depth()
        assert len(pm1.leaf_blocks()) > len(pmr.leaf_blocks())


def build_pmr(segs):
    ctx = StorageContext.create()
    idx = PMRQuadtree(ctx, threshold=4, max_depth=TEST_DEPTH, world_size=TEST_WORLD)
    for sid in ctx.load_segments(segs):
        idx.insert(sid)
    return idx


class TestOnRealisticMap:
    def test_pm_family_on_lattice(self):
        segs = lattice_map(n=6, pitch=110, jitter=15, seed=9)
        for cls in PM_CLASSES:
            idx = build(cls, segs)
            idx.check_invariants()
            # Everything findable.
            got = set(idx.candidate_ids_in_rect(Rect(0, 0, TEST_WORLD, TEST_WORLD)))
            assert got == set(range(len(segs)))
