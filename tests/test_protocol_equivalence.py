"""Golden protocol equivalence: threaded v1 oracle vs async v1 vs async v2.

Three servers over byte-identical engines run the same request script --
reads, mutations, every error class -- through three transports:

* the threaded :class:`MapServer` over a plain v1 socket (the oracle),
* the :class:`AsyncMapServer` over the same plain v1 socket,
* the :class:`AsyncMapServer` over negotiated v2 frames.

Deterministic ops must produce *identical* envelopes; ``stats`` (which
leaks session names and timings) is compared on its deterministic
projection. This is the suite that keeps the async server from drifting
semantically from the threaded one.
"""

import asyncio
import json
import socket

import pytest

from repro.aio import AsyncMapClient, AsyncMapServer
from repro.obs import dtrace
from repro.obs.trace import TRACER
from repro.service import MapServer, QueryEngine, send_request

from tests.conftest import build_index, lattice_map

#: The golden script. ``"seg_id": "INSERTED"`` is replaced per-run with
#: whatever the script's insert returned (identical engines return
#: identical ids, so the envelopes still line up exactly).
GOLDEN_OPS = [
    {"op": "ping"},
    {"op": "ping", "v": 1},
    {"op": "point", "x": 100, "y": 100},
    {"op": "window", "x1": 0, "y1": 0, "x2": 400, "y2": 400},
    {"op": "window", "x1": 50, "y1": 50, "x2": 350, "y2": 350, "mode": "contains"},
    {"op": "nearest", "x": 300, "y": 300, "k": 3},
    {
        "op": "batch",
        "order": "morton",
        "requests": [
            {"op": "point", "x": 100, "y": 100},
            {"op": "window", "x1": 0, "y1": 0, "x2": 200, "y2": 200},
            {"op": "nearest", "x": 60, "y": 60, "k": 1},
        ],
    },
    {"op": "insert", "x1": 5, "y1": 5, "x2": 30, "y2": 35},
    {"op": "point", "x": 5, "y": 5},
    {"op": "delete", "seg_id": "INSERTED"},
    {"op": "point", "x": 5, "y": 5},
    {"op": "check"},
    {
        "op": "explain",
        "query": {"op": "window", "x1": 0, "y1": 0, "x2": 200, "y2": 200},
    },
    # Every error class, as data: same code, same message, any transport.
    {"op": "bogus"},
    {"op": "insert", "x1": "abc", "y1": 0, "x2": 1, "y2": 1},
    {"op": "insert", "x1": 0, "y1": 0, "x2": 10},
    {"op": "delete", "seg_id": 999999},
    {"op": "delete", "seg_id": True},
    {"op": "checkpoint"},
    {"op": "ping", "v": 3},
    {"op": "stats"},
]


def _fresh_engine():
    return QueryEngine(build_index("R*", lattice_map(n=8)))


def _resolve(op, inserted):
    if op.get("seg_id") == "INSERTED":
        op = dict(op, seg_id=inserted)
    return op


def _run_script_v1(address):
    """The whole script down one persistent v1 connection."""
    envelopes = []
    inserted = None
    with socket.create_connection(address, timeout=10) as sock:
        with sock.makefile("rwb") as fh:
            for op in GOLDEN_OPS:
                op = _resolve(op, inserted)
                fh.write(json.dumps(op).encode() + b"\n")
                fh.flush()
                envelope = json.loads(fh.readline())
                if op["op"] == "insert" and envelope.get("ok"):
                    inserted = envelope["result"]
                envelopes.append(envelope)
    return envelopes


def _run_script_v2(address):
    """The whole script down one pipelined v2 connection, in order."""

    async def main():
        envelopes = []
        inserted = None
        client = await AsyncMapClient.connect(address)
        try:
            for op in GOLDEN_OPS:
                op = _resolve(op, inserted)
                if op.get("v") is not None:
                    # The "v" pin is v1 framing business; inside v2 the
                    # version is settled. Send the op without the pin and
                    # re-attach the echo the v1 transports will have, so
                    # the envelope comparison stays exact -- except bad
                    # versions, which v1 rejects but v2 cannot express.
                    if op["v"] not in (1, 2):
                        envelopes.append(None)
                        continue
                    envelope = await client.request(
                        {k: v for k, v in op.items() if k != "v"}
                    )
                    envelope = dict(envelope, v=op["v"])
                else:
                    envelope = await client.request(op)
                if op["op"] == "insert" and envelope.get("ok"):
                    inserted = envelope["result"]
                envelopes.append(envelope)
        finally:
            await client.close()
        return envelopes

    return asyncio.run(main())


def _strip_timings(value):
    """Drop wall-clock fields (explain carries ``elapsed_ms``)."""
    if isinstance(value, dict):
        return {
            k: _strip_timings(v)
            for k, v in value.items()
            if k not in ("elapsed_ms",)
        }
    if isinstance(value, list):
        return [_strip_timings(v) for v in value]
    return value


def _stats_projection(envelope):
    """The deterministic slice of a stats envelope."""
    result = envelope["result"]
    return {
        "ok": envelope["ok"],
        "index_kind": result["index"]["kind"],
        "segments": result["index"]["segments"],
        "durable": result["durable"],
        "counters_consistent": result["counters_consistent"],
    }


@pytest.fixture()
def oracle():
    srv = MapServer(_fresh_engine())
    srv.start_background()
    yield srv
    srv.shutdown()
    srv.server_close()


@pytest.fixture()
def async_server():
    srv = AsyncMapServer(_fresh_engine(), executor_workers=2)
    srv.start_background()
    yield srv
    srv.stop()


class TestEquivalence:
    def _compare(self, golden, candidate, transport):
        assert len(golden) == len(candidate)
        for op, want, got in zip(GOLDEN_OPS, golden, candidate):
            if got is None:
                continue  # inexpressible on this transport (bad v1 pin)
            if op["op"] == "stats":
                assert _stats_projection(want) == _stats_projection(got), op
            elif op.get("v") not in (None, 1, 2):
                # The rejection message names the versions each server
                # speaks -- the one divergence that IS the protocol
                # (clients downgrade off it). Code and type still match.
                assert want["ok"] is False and got["ok"] is False
                assert want["error"]["code"] == got["error"]["code"]
                assert want["error"]["type"] == got["error"]["type"]
            else:
                assert _strip_timings(want) == _strip_timings(got), (
                    f"{transport} diverged on {op}"
                )

    def test_async_v1_matches_threaded_oracle(self, oracle, async_server):
        golden = _run_script_v1(oracle.address)
        candidate = _run_script_v1(async_server.address)
        self._compare(golden, candidate, "async-v1")

    def test_async_v2_matches_threaded_oracle(self, oracle, async_server):
        golden = _run_script_v1(oracle.address)
        candidate = _run_script_v2(async_server.address)
        self._compare(golden, candidate, "async-v2")

    def test_error_codes_cover_every_class(self, oracle):
        codes = {
            envelope["error"]["code"]
            for envelope in _run_script_v1(oracle.address)
            if not envelope["ok"]
        }
        assert {"unknown_op", "bad_args", "unknown_seg", "not_durable"} <= codes


# ----------------------------------------------------------------------
# Trace-context propagation under v2 pipelining (satellite S3)
# ----------------------------------------------------------------------
#: Interleaved per-request ops: deterministic reads, so the envelopes
#: (minus trace identity) must match the threaded oracle exactly.
_TRACED_OPS = [
    {"op": "point", "x": 100, "y": 100},
    {"op": "window", "x1": 0, "y1": 0, "x2": 400, "y2": 400},
    {"op": "nearest", "x": 300, "y": 300, "k": 3},
    {"op": "point", "x": 200, "y": 200},
    {"op": "window", "x1": 50, "y1": 50, "x2": 350, "y2": 350},
    {"op": "nearest", "x": 60, "y": 60, "k": 1},
    {"op": "point", "x": 300, "y": 100},
    {"op": "window", "x1": 100, "y1": 100, "x2": 300, "y2": 300},
]


def _strip_tc(envelope):
    return {k: v for k, v in envelope.items() if k != "tc"}


class TestTracePipelining:
    """N interleaved sampled+unsampled requests on ONE v2 connection must
    produce N disjoint, correctly parented trees -- the thread-local
    handoff must never bleed context between pipelined requests that
    share executor threads."""

    @pytest.fixture()
    def traced(self):
        TRACER.clear()
        TRACER.arm(1.0)
        yield
        TRACER.disarm()
        TRACER.clear()

    def test_pipelined_contexts_stay_disjoint(self, traced, oracle, async_server):
        # Even-indexed requests sampled, odd unsampled; every request
        # carries its own freshly minted context.
        contexts = [
            dtrace.TraceContext(
                dtrace.new_trace_id(), dtrace.new_span_id(), i % 2 == 0
            )
            for i in range(len(_TRACED_OPS))
        ]
        discarded_before = TRACER.stats()["tail_discarded"]

        async def main():
            client = await AsyncMapClient.connect(async_server.address)
            try:
                assert client.features.get("tc"), (
                    "server must advertise trace-trailer support on the "
                    "upgrade ack"
                )
                # One pipelined burst: all requests in flight at once on
                # one socket, resolved in whatever order the two executor
                # threads finish them.
                return await asyncio.gather(
                    *(
                        client.request(op, tc=ctx)
                        for op, ctx in zip(_TRACED_OPS, contexts)
                    )
                )
            finally:
                await client.close()

        envelopes = asyncio.run(main())

        # --- each response carries exactly its own trace identity ------
        for i, (ctx, envelope) in enumerate(zip(contexts, envelopes)):
            assert envelope["ok"], envelope
            tc = envelope["tc"]
            assert tc["t"] == ctx.trace_id, f"request {i} got a foreign trace"
            if ctx.sampled:
                subtree = tc["span"]
                assert subtree["trace_id"] == ctx.trace_id
                assert subtree["parent_id"] == ctx.span_id
                assert subtree["name"] == _TRACED_OPS[i]["op"]
            else:
                assert tc["f"] == 0
                assert "span" not in tc

        # --- the trees are disjoint: N distinct ids, no sharing --------
        assert len({ctx.trace_id for ctx in contexts}) == len(contexts)
        sampled = [ctx for ctx in contexts if ctx.sampled]
        for ctx in sampled:
            record = TRACER.find(ctx.trace_id)
            assert record is not None, f"sampled trace {ctx.trace_id} not retained"
            assert record["parent_id"] == ctx.span_id

        # --- unsampled skeletons were tail-discarded, not retained -----
        unsampled = [ctx for ctx in contexts if not ctx.sampled]
        for ctx in unsampled:
            assert TRACER.find(ctx.trace_id) is None
        assert (
            TRACER.stats()["tail_discarded"] - discarded_before
            >= len(unsampled)
        )

        # --- and the payloads match the threaded oracle ----------------
        for op, envelope in zip(_TRACED_OPS, envelopes):
            want = send_request(oracle.address, dict(op))
            assert _strip_timings(_strip_tc(want)) == _strip_timings(
                _strip_tc(envelope)
            ), f"traced v2 diverged from oracle on {op}"
