"""Tests for the Segment value type."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.geometry import Point, Rect, Segment

coords = st.integers(min_value=0, max_value=1000)
segments = st.builds(Segment, coords, coords, coords, coords)


class TestBasics:
    def test_from_points_roundtrip(self):
        s = Segment.from_points(Point(1, 2), Point(3, 4))
        assert s.start == Point(1, 2)
        assert s.end == Point(3, 4)
        assert s.endpoints() == (Point(1, 2), Point(3, 4))

    def test_reversed(self):
        assert Segment(1, 2, 3, 4).reversed() == Segment(3, 4, 1, 2)

    def test_length(self):
        s = Segment(0, 0, 3, 4)
        assert s.length2() == 25
        assert s.length() == 5

    def test_degenerate(self):
        assert Segment(2, 2, 2, 2).is_degenerate()
        assert not Segment(2, 2, 2, 3).is_degenerate()

    def test_mbr(self):
        assert Segment(5, 1, 2, 9).mbr() == Rect(2, 1, 5, 9)

    @given(segments)
    def test_mbr_contains_endpoints(self, s):
        r = s.mbr()
        assert r.contains_point(s.start)
        assert r.contains_point(s.end)

    @given(segments)
    def test_mbr_is_tight(self, s):
        r = s.mbr()
        assert {r.xmin, r.xmax} <= {s.x1, s.x2}
        assert {r.ymin, r.ymax} <= {s.y1, s.y2}


class TestEndpoints:
    def test_other_endpoint(self):
        s = Segment(1, 1, 5, 5)
        assert s.other_endpoint(Point(1, 1)) == Point(5, 5)
        assert s.other_endpoint(Point(5, 5)) == Point(1, 1)

    def test_other_endpoint_not_an_endpoint(self):
        with pytest.raises(ValueError):
            Segment(1, 1, 5, 5).other_endpoint(Point(3, 3))

    def test_other_endpoint_degenerate(self):
        assert Segment(2, 2, 2, 2).other_endpoint(Point(2, 2)) == Point(2, 2)

    def test_has_endpoint(self):
        s = Segment(1, 1, 5, 5)
        assert s.has_endpoint(Point(1, 1))
        assert s.has_endpoint(Point(5, 5))
        assert not s.has_endpoint(Point(2, 2))


class TestClipping:
    def test_clipped_inside(self):
        s = Segment(1, 1, 2, 2)
        assert s.clipped(Rect(0, 0, 10, 10)) == s

    def test_clipped_missing(self):
        assert Segment(0, 0, 1, 1).clipped(Rect(5, 5, 9, 9)) is None

    @given(segments)
    def test_clipped_consistent_with_intersects(self, s):
        r = Rect(200, 200, 700, 700)
        assert (s.clipped(r) is not None) == s.intersects_rect(r)

    @given(segments)
    def test_qedge_within_block(self, s):
        r = Rect(200, 200, 700, 700)
        q = s.clipped(r)
        if q is not None:
            eps = 1e-9
            for p in q.endpoints():
                assert r.xmin - eps <= p.x <= r.xmax + eps
                assert r.ymin - eps <= p.y <= r.ymax + eps

    def test_distance2_to_point(self):
        assert Segment(0, 0, 10, 0).distance2_to_point(Point(5, 4)) == 16
