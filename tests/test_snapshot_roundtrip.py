"""Snapshot fidelity: save_index/open_index round-trips are queryable.

The acceptance bar for the service layer: a reopened snapshot serves all
five paper queries with answers identical to the original index, with
identical structure statistics, and with *zero* rebuild inserts (no page
writes at all during or after open).
"""

import io
import random

import pytest

from repro.core.queries import (
    enclosing_polygon,
    nearest_segment,
    segments_at_other_endpoint,
    segments_at_point,
    window_query,
)
from repro.data import generate_county
from repro.geometry import Point, Rect, Segment
from repro.harness.experiment import build_structure
from repro.service import open_index, save_index, snapshot_info
from repro.storage.codec import CodecError

STRUCTURES = ["R*", "R+", "PMR"]


@pytest.fixture(scope="module")
def county():
    return generate_county("cecil", scale=0.01)


@pytest.fixture(scope="module", params=STRUCTURES)
def pair(request, county):
    """(original index, reopened snapshot) for each structure."""
    index = build_structure(request.param, county).index
    buf = io.BytesIO()
    save_index(index, buf)
    buf.seek(0)
    return index, open_index(buf), county


class TestRoundTripQueries:
    def test_zero_rebuild_writes(self, pair):
        _, opened, _ = pair
        assert opened.ctx.counters.disk_writes == 0
        assert opened.ctx.pool.has_dirty() is False

    def test_statistics_identical(self, pair):
        index, opened, _ = pair
        assert opened.page_count() == index.page_count()
        assert opened.height() == index.height()
        assert opened.entry_count() == index.entry_count()
        assert len(opened.ctx.segments) == len(index.ctx.segments)

    def test_invariants_hold(self, pair):
        _, opened, _ = pair
        opened.check_invariants()

    def test_query1_point(self, pair):
        index, opened, county = pair
        for seg in county.segments[:20]:
            p = Point(seg.x1, seg.y1)
            assert sorted(segments_at_point(opened, p)) == sorted(
                segments_at_point(index, p)
            )

    def test_query2_other_endpoint(self, pair):
        index, opened, county = pair
        for seg_id in range(10):
            seg = county.segments[seg_id]
            p = Point(seg.x1, seg.y1)
            got = segments_at_other_endpoint(opened, p, seg_id)
            want = segments_at_other_endpoint(index, p, seg_id)
            assert got[0] == want[0]
            assert sorted(got[1]) == sorted(want[1])

    def test_query3_nearest(self, pair):
        index, opened, _ = pair
        rng = random.Random(7)
        for _ in range(15):
            p = Point(rng.uniform(0, 16384), rng.uniform(0, 16384))
            assert nearest_segment(opened, p) == nearest_segment(index, p)

    def test_query4_polygon(self, pair):
        index, opened, county = pair
        seg = county.segments[0]
        p = Point((seg.x1 + seg.x2) / 2 + 0.25, (seg.y1 + seg.y2) / 2 + 0.25)
        got = enclosing_polygon(opened, p)
        want = enclosing_polygon(index, p)
        assert got == want

    def test_query5_window(self, pair):
        index, opened, _ = pair
        rng = random.Random(11)
        for _ in range(10):
            x, y = rng.uniform(0, 15000), rng.uniform(0, 15000)
            w = Rect(x, y, x + rng.uniform(100, 1500), y + rng.uniform(100, 1500))
            assert sorted(window_query(opened, w)) == sorted(
                window_query(index, w)
            )

    def test_snapshot_still_mutable(self, pair):
        """A reopened snapshot is a live index: inserts and deletes work."""
        _, opened, _ = pair
        seg_id = opened.ctx.segments.append(Segment(3.0, 3.0, 40.0, 41.0))
        opened.insert(seg_id)
        assert seg_id in segments_at_point(opened, Point(3.0, 3.0))
        opened.delete(seg_id)
        assert seg_id not in segments_at_point(opened, Point(3.0, 3.0))


class TestManifest:
    def test_snapshot_info(self, tmp_path, county):
        index = build_structure("PMR", county).index
        path = tmp_path / "pmr.snap"
        save_index(index, path)
        manifest = snapshot_info(path)
        assert manifest["kind"] == "PMR"
        assert manifest["segments"]["count"] == len(county.segments)
        assert manifest["params"]["threshold"] == index.threshold
        assert manifest["btree"]["root_id"] == index.btree._root_id

    def test_unsupported_structure_rejected(self, county):
        index = build_structure("R+t", county).index
        with pytest.raises(CodecError, match="no snapshot support"):
            save_index(index, io.BytesIO())

    def test_pmr_store_bboxes_rejected(self, county):
        index = build_structure("PMR", county, store_bboxes=True).index
        with pytest.raises(CodecError, match="store_bboxes"):
            save_index(index, io.BytesIO())

    def test_plain_dump_rejected_by_open(self, county):
        from repro.storage.codec import dump_database

        index = build_structure("R*", county).index
        index.ctx.pool.flush()
        buf = io.BytesIO()
        dump_database(index.ctx.disk, buf)
        buf.seek(0)
        with pytest.raises(CodecError, match="manifest"):
            open_index(buf)
