"""The perf-baseline record and its regression gate.

The gate only compares deterministic counters, so two runs of the same
seeded workload -- in the same process or across machines -- must
produce identical gated values; wall-clock may drift and must only warn.
"""

import copy
import json

import pytest

from repro.bench import (
    BENCH_SCHEMA_VERSION,
    compare_records,
    load_record,
    run_bench,
    validate_record,
    write_record,
)
from repro.bench.compare import EXIT_INCOMPARABLE, EXIT_OK, EXIT_REGRESSION
from repro.bench.runner import BENCH_STRUCTURES, BENCH_WORKLOADS
from repro.metric_names import DISK_ACCESSES, PAPER_METRICS

#: Tiny but real workload so the whole module runs in seconds.
SMALL_PARAMS = {"county": "cecil", "scale": 0.01, "n_queries": 5, "seed": 7}


@pytest.fixture(scope="module")
def record():
    return run_bench(SMALL_PARAMS)


class TestRecordSchema:
    def test_fresh_record_validates(self, record):
        assert validate_record(record) == []
        assert record["schema_version"] == BENCH_SCHEMA_VERSION
        assert isinstance(record["git_sha"], str)

    def test_every_structure_and_workload_present(self, record):
        for name in BENCH_STRUCTURES:
            entry = record["structures"][name]
            assert set(entry["workloads"]) == set(BENCH_WORKLOADS)
            for metric in PAPER_METRICS:
                assert isinstance(entry["totals"][metric], int)
                assert entry["totals"][metric] == sum(
                    entry["workloads"][w][metric] for w in BENCH_WORKLOADS
                )

    def test_validator_catches_damage(self, record):
        assert validate_record([]) != []
        assert validate_record({"kind": "nope"}) != []
        broken = copy.deepcopy(record)
        del broken["structures"]["PMR"]
        assert any("PMR" in p for p in validate_record(broken))
        broken = copy.deepcopy(record)
        broken["structures"]["R*"]["totals"][DISK_ACCESSES] = 1.5
        assert any(DISK_ACCESSES in p for p in validate_record(broken))

    def test_write_and_load_round_trip(self, record, tmp_path):
        path = str(tmp_path / "BENCH_test.json")
        write_record(record, path)
        assert load_record(path) == record
        with open(path) as fh:  # committed baselines must be stable JSON
            assert json.load(fh) == record


class TestRegressionGate:
    def test_identical_records_pass(self, record):
        code, lines = compare_records(record, record, tolerance=0.10)
        assert code == EXIT_OK
        assert any("no counter regressed" in line for line in lines)

    def test_rerun_is_deterministic(self, record):
        fresh = run_bench(SMALL_PARAMS)
        code, _ = compare_records(record, fresh, tolerance=0.0)
        assert code == EXIT_OK

    def test_doctored_twenty_percent_worse_fails(self, record):
        bad = copy.deepcopy(record)
        for name in BENCH_STRUCTURES:
            totals = bad["structures"][name]["totals"]
            totals[DISK_ACCESSES] = int(totals[DISK_ACCESSES] * 1.2) + 1
        code, lines = compare_records(record, bad, tolerance=0.10)
        assert code == EXIT_REGRESSION
        assert any("REGRESSION" in line for line in lines)

    def test_within_tolerance_passes(self, record):
        near = copy.deepcopy(record)
        totals = near["structures"]["R*"]["totals"]
        totals[DISK_ACCESSES] = int(totals[DISK_ACCESSES] * 1.05)
        code, _ = compare_records(record, near, tolerance=0.10)
        assert code == EXIT_OK

    def test_improvement_passes_and_is_reported(self, record):
        better = copy.deepcopy(record)
        totals = better["structures"]["R*"]["totals"]
        totals[DISK_ACCESSES] = max(0, totals[DISK_ACCESSES] - 1)
        code, lines = compare_records(record, better, tolerance=0.10)
        assert code == EXIT_OK
        assert any("improved" in line for line in lines)

    def test_param_mismatch_is_incomparable_not_regression(self, record):
        other = copy.deepcopy(record)
        other["params"]["seed"] = 8
        code, lines = compare_records(record, other, tolerance=0.10)
        assert code == EXIT_INCOMPARABLE
        assert any("not comparable" in line for line in lines)

    def test_schema_mismatch_is_incomparable(self, record):
        other = copy.deepcopy(record)
        other["schema_version"] = BENCH_SCHEMA_VERSION + 1
        code, _ = compare_records(record, other, tolerance=0.10)
        assert code == EXIT_INCOMPARABLE


class TestVectorBenchKind:
    """The backend-comparison record speaks the same gate protocol."""

    @pytest.fixture(scope="class")
    def vector_record(self):
        vector_mod = pytest.importorskip(
            "numpy", reason="vector bench needs the [vector] extra"
        )
        del vector_mod
        from repro.bench import run_vector_bench

        return run_vector_bench(
            {"county": "cecil", "scale": 0.01, "n_queries": 5, "repeats": 1}
        )

    def test_fresh_vector_record_validates(self, vector_record):
        from repro.bench import validate_vector_record

        assert validate_vector_record(vector_record) == []
        for entry in vector_record["structures"].values():
            for w in entry["workloads"].values():
                assert w["parity"] is True
                assert isinstance(w["speedup"], float)

    def test_vector_record_self_compares_clean(self, vector_record):
        code, lines = compare_records(vector_record, vector_record)
        assert code == EXIT_OK, lines

    def test_vector_and_core_records_are_incomparable(self, vector_record, record):
        code, lines = compare_records(record, vector_record, tolerance=0.10)
        assert code == EXIT_INCOMPARABLE
        assert any("not comparable" in line for line in lines)

    def test_parity_failure_aborts_instead_of_recording(self, monkeypatch):
        pytest.importorskip("numpy")
        import repro.bench.vector as vb

        class _LyingBackend:
            def describe(self):
                return {"name": "vector"}

            def run_batch(self, index, specs):
                return [[] for _ in specs]

        monkeypatch.setattr(
            vb, "resolve_backend", lambda name: _LyingBackend()
        )
        with pytest.raises(vb.BackendParityError):
            vb.run_vector_bench(
                {"county": "cecil", "scale": 0.01, "n_queries": 3, "repeats": 1}
            )
