"""Tests for the serving-path perf baseline (``bench --serve``)."""

import copy

import pytest

from repro.bench.compare import (
    EXIT_INCOMPARABLE,
    EXIT_OK,
    EXIT_REGRESSION,
    compare_records,
)
from repro.bench.runner import BENCH_KIND
from repro.bench.serve import (
    SERVE_BENCH_KIND,
    SERVE_MODES,
    run_serve_bench,
    serve_gate_points,
    serve_wall_points,
    validate_serve_record,
)

#: Small but real: both servers spun up, mutations through group commit.
TINY = {
    "scale": 0.01,
    "threads": 2,
    "requests": 40,
    "pipeline": 4,
    "async_multiplier": 5,
    "mutate_frac": 0.25,
}


@pytest.fixture(scope="module")
def record():
    return run_serve_bench(TINY)


class TestServeRecord:
    def test_record_validates(self, record):
        assert validate_serve_record(record) == []
        assert record["kind"] == SERVE_BENCH_KIND

    def test_both_modes_ran_clean(self, record):
        assert set(record["modes"]) == set(SERVE_MODES)
        for mode in SERVE_MODES:
            entry = record["modes"][mode]
            assert entry["requests"] == TINY["requests"]
            assert entry["errors"] == 0
            assert entry["counters_consistent"] is True
            assert entry["wall"]["p50_ms"] <= entry["wall"]["p99_ms"]

    def test_async_sustains_5x_connections(self, record):
        threaded = record["modes"]["threaded"]["connections"]
        assert record["modes"]["async"]["connections"] >= 5 * threaded

    def test_group_commit_batched(self, record):
        gc = record["modes"]["async"]["group_commit"]
        assert gc["mutations"] > 0
        assert gc["fsyncs"] < gc["mutations"]
        assert 0.0 < gc["fsyncs_per_mutation"] < 1.0

    def test_gate_points_are_deterministic_zeros(self, record):
        points = dict(serve_gate_points(record))
        for mode in SERVE_MODES:
            assert points[f"{mode}/errors"] == 0
            assert points[f"{mode}/counters_inconsistent"] == 0

    def test_wall_points_cover_latency_and_fsync_ratio(self, record):
        labels = {label for label, _ in serve_wall_points(record)}
        for mode in SERVE_MODES:
            assert f"{mode}/p50_ms" in labels
            assert f"{mode}/p99_ms" in labels
        assert "async/fsyncs_per_mutation" in labels

    def test_self_comparison_is_clean_at_zero_tolerance(self, record):
        code, lines = compare_records(record, record, tolerance=0.0)
        assert code == EXIT_OK, "\n".join(lines)


class TestServeGateSafety:
    def test_cross_kind_comparison_refused(self, record):
        code, lines = compare_records({"kind": BENCH_KIND}, record)
        assert code == EXIT_INCOMPARABLE
        assert any("kind mismatch" in line for line in lines)

    def test_error_count_regression_gates(self, record):
        worse = copy.deepcopy(record)
        worse["modes"]["async"]["errors"] = 7
        code, lines = compare_records(record, worse, tolerance=0.10)
        assert code == EXIT_REGRESSION
        assert any("REGRESSION" in line for line in lines)

    def test_latency_growth_only_warns(self, record):
        slower = copy.deepcopy(record)
        for mode in SERVE_MODES:
            slower["modes"][mode]["wall"]["p99_ms"] *= 100
        code, lines = compare_records(record, slower, tolerance=0.10)
        assert code == EXIT_OK
        assert any("warn" in line for line in lines)

    def test_starved_async_connections_fail_validation(self, record):
        broken = copy.deepcopy(record)
        broken["modes"]["async"]["connections"] = (
            broken["modes"]["threaded"]["connections"]
        )
        assert validate_serve_record(broken)
