"""Batch execution: Morton scheduling beats arrival order on pool misses."""

import random

import pytest

from repro.service import BatchExecutor, QueryEngine, morton_key
from repro.service.batch import _centroid

from tests.conftest import build_index, lattice_map


@pytest.fixture()
def engine():
    # A larger lattice than the pool can hold, so scheduling matters.
    return QueryEngine(build_index("R*", lattice_map(n=16, pitch=60)))


def shuffled_point_requests(n=200, seed=3):
    rng = random.Random(seed)
    requests = [
        {"op": "point", "x": (rng.randrange(1, 17)) * 60, "y": (rng.randrange(1, 17)) * 60}
        for _ in range(n)
    ]
    rng.shuffle(requests)
    return requests


class TestMortonScheduling:
    def test_results_in_arrival_order(self, engine):
        requests = shuffled_point_requests(40)
        executor = BatchExecutor(engine)
        arrival = executor.execute(requests, order="arrival", use_cache=False)
        engine.cold_start()
        morton = executor.execute(requests, order="morton", use_cache=False)
        assert morton.results == arrival.results

    def test_morton_reduces_disk_accesses(self, engine):
        requests = shuffled_point_requests(200)
        comparison = BatchExecutor(engine).compare_orders(requests)
        assert (
            comparison["morton"].disk_accesses
            < comparison["arrival"].disk_accesses
        )

    def test_mixed_ops_supported(self, engine):
        requests = [
            {"op": "point", "x": 120, "y": 120},
            {"op": "window", "x1": 0, "y1": 0, "x2": 300, "y2": 300},
            {"op": "nearest", "x": 500, "y": 500, "k": 2},
        ]
        result = BatchExecutor(engine).execute(requests)
        assert len(result.results) == 3
        assert isinstance(result.results[1], list)
        assert len(result.results[2]) == 2

    def test_unknown_op_rejected(self, engine):
        with pytest.raises(ValueError, match="op"):
            BatchExecutor(engine).execute([{"op": "polygonz", "x": 1, "y": 1}])

    def test_bad_order_rejected(self, engine):
        with pytest.raises(ValueError, match="order"):
            BatchExecutor(engine).execute([], order="hilbert")

    def test_batch_charges_session(self, engine):
        session = engine.session("batcher")
        result = BatchExecutor(engine).execute(
            shuffled_point_requests(30), session=session, use_cache=False
        )
        assert result.metrics.disk_accesses + result.metrics.buffer_hits > 0
        assert session.counters.snapshot() == result.metrics
        assert engine.counters_consistent()


class TestMortonKey:
    def test_orders_by_locality(self):
        # The four quadrant corners of a 2x2 world sort SW, SE, NW, NE.
        keys = [morton_key(x, y) for x, y in [(0, 0), (1, 0), (0, 1), (1, 1)]]
        assert keys == sorted(keys)

    def test_clamps_out_of_world(self):
        assert morton_key(-5, -5) == morton_key(0, 0)
        assert morton_key(1e9, 1e9) == morton_key(16383, 16383)

    def test_centroids(self):
        assert _centroid({"op": "point", "x": 3, "y": 4}) == (3.0, 4.0)
        assert _centroid(
            {"op": "window", "x1": 0, "y1": 0, "x2": 10, "y2": 20}
        ) == (5.0, 10.0)
        assert _centroid({"op": "nearest", "x": 1, "y": 2}) == (1.0, 2.0)
        with pytest.raises(ValueError):
            _centroid({"op": "stats"})
