"""Tests for Hilbert locational codes and the curve option of the PMR."""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.pmr import PMRQuadtree
from repro.core.pmr.blocks import PMRBlock
from repro.core.pmr.locational import hilbert_code, hilbert_index
from repro.core.queries import nearest_segment, segments_at_point, window_query
from repro.geometry import Point, Rect
from repro.storage import StorageContext

from tests.conftest import (
    TEST_DEPTH,
    TEST_WORLD,
    oracle_at_point,
    oracle_in_window,
    oracle_nearest_dist2,
    random_planar_segments,
)


class TestHilbertIndex:
    def test_order1_values(self):
        # The order-1 curve visits (0,0), (0,1), (1,1), (1,0).
        assert hilbert_index(1, 0, 0) == 0
        assert hilbert_index(1, 0, 1) == 1
        assert hilbert_index(1, 1, 1) == 2
        assert hilbert_index(1, 1, 0) == 3

    def test_bijection_small_orders(self):
        for order in (1, 2, 3, 4):
            n = 1 << order
            seen = {hilbert_index(order, x, y) for x in range(n) for y in range(n)}
            assert seen == set(range(n * n))

    def test_curve_is_continuous(self):
        """Consecutive indices map to 4-adjacent cells (the defining
        property Morton lacks)."""
        order = 4
        n = 1 << order
        by_index = {}
        for x in range(n):
            for y in range(n):
                by_index[hilbert_index(order, x, y)] = (x, y)
        for i in range(n * n - 1):
            (x1, y1), (x2, y2) = by_index[i], by_index[i + 1]
            assert abs(x1 - x2) + abs(y1 - y2) == 1, (i, by_index[i], by_index[i + 1])

    @given(st.integers(1, 8), st.integers(0, 255), st.integers(0, 255))
    def test_index_in_range(self, order, x, y):
        n = 1 << order
        idx = hilbert_index(order, x % n, y % n)
        assert 0 <= idx < n * n


class TestHilbertBlockCodes:
    def test_block_intervals_partition_space(self):
        """Sibling code intervals tile [0, 4^max) without overlap."""
        parent = PMRBlock(0, 0, 0)
        children = parent.split()
        children[0].split()
        max_depth = 5
        intervals = []
        for leaf in parent.iter_leaves():
            lo = hilbert_code(leaf.bx, leaf.by, leaf.depth, max_depth)
            intervals.append((lo, lo + 4 ** (max_depth - leaf.depth)))
        intervals.sort()
        assert intervals[0][0] == 0
        for (a_lo, a_hi), (b_lo, _) in zip(intervals, intervals[1:]):
            assert a_hi == b_lo, intervals
        assert intervals[-1][1] == 4**max_depth

    def test_descendant_codes_inside_parent_interval(self):
        max_depth = 6
        for bx, by, depth in ((1, 2, 2), (0, 0, 1), (3, 1, 2)):
            parent_lo = hilbert_code(bx, by, depth, max_depth)
            parent_hi = parent_lo + 4 ** (max_depth - depth)
            block = PMRBlock(depth, bx, by)
            for child in block.split():
                lo = hilbert_code(child.bx, child.by, child.depth, max_depth)
                assert parent_lo <= lo < parent_hi


class TestHilbertPMR:
    def build(self, segments, curve):
        ctx = StorageContext.create()
        idx = PMRQuadtree(
            ctx, max_depth=TEST_DEPTH, world_size=TEST_WORLD, curve=curve
        )
        for sid in ctx.load_segments(segments):
            idx.insert(sid)
        return idx

    def test_bad_curve_rejected(self):
        with pytest.raises(ValueError):
            PMRQuadtree(StorageContext.create(), curve="peano")

    def test_queries_match_oracle(self):
        rng = random.Random(81)
        segs = random_planar_segments(rng)
        idx = self.build(segs, "hilbert")
        idx.check_invariants()
        for s in segs[:10]:
            assert set(segments_at_point(idx, s.start)) == set(
                oracle_at_point(segs, s.start)
            )
        w = Rect(120, 220, 700, 660)
        assert set(window_query(idx, w)) == set(oracle_in_window(segs, w))
        p = Point(600, 480)
        assert nearest_segment(idx, p)[1] == pytest.approx(
            oracle_nearest_dist2(segs, p)
        )

    def test_same_decomposition_either_curve(self):
        """The curve changes the key order, never the block structure."""
        rng = random.Random(82)
        segs = random_planar_segments(rng)
        morton = self.build(segs, "morton")
        hilbert = self.build(segs, "hilbert")
        blocks_m = sorted((b.depth, b.bx, b.by) for b in morton.leaf_blocks())
        blocks_h = sorted((b.depth, b.bx, b.by) for b in hilbert.leaf_blocks())
        assert blocks_m == blocks_h
        assert morton.entry_count() == hilbert.entry_count()

    def test_deletion_under_hilbert(self):
        rng = random.Random(83)
        segs = random_planar_segments(rng, n_cells=4)
        ctx = StorageContext.create()
        idx = PMRQuadtree(
            ctx, max_depth=TEST_DEPTH, world_size=TEST_WORLD, curve="hilbert"
        )
        ids = ctx.load_segments(segs)
        for sid in ids:
            idx.insert(sid)
        for sid in ids[::2]:
            idx.delete(sid)
        idx.check_invariants()
        got = set(idx.candidate_ids_in_rect(Rect(0, 0, TEST_WORLD, TEST_WORLD)))
        assert got == set(ids) - set(ids[::2])
