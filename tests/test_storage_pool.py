"""Tests for the disk manager, buffer pool, and replacement policies."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.storage import (
    BufferPool,
    ClockPolicy,
    DiskManager,
    FIFOPolicy,
    LRUPolicy,
    MetricsCounters,
    PageNotAllocatedError,
)


class TestDiskManager:
    def test_allocate_and_read(self):
        d = DiskManager()
        pid = d.allocate("hello")
        assert d.read(pid) == "hello"
        assert d.is_allocated(pid)

    def test_sequential_ids(self):
        d = DiskManager()
        assert [d.allocate() for _ in range(3)] == [0, 1, 2]

    def test_read_unallocated_raises(self):
        with pytest.raises(PageNotAllocatedError):
            DiskManager().read(0)

    def test_write_unallocated_raises(self):
        with pytest.raises(PageNotAllocatedError):
            DiskManager().write(7, "x")

    def test_free_then_read_raises(self):
        d = DiskManager()
        pid = d.allocate("x")
        d.free(pid)
        with pytest.raises(PageNotAllocatedError):
            d.read(pid)

    def test_freed_id_is_recycled(self):
        d = DiskManager()
        a = d.allocate()
        d.free(a)
        assert d.allocate() == a  # free list, so churn stays bounded
        assert d.allocate() == a + 1

    def test_allocated_bytes(self):
        d = DiskManager(page_size=512)
        d.allocate()
        d.allocate()
        assert d.allocated_bytes == 1024

    def test_physical_counters(self):
        d = DiskManager()
        pid = d.allocate("a")
        d.read(pid)
        d.write(pid, "b")
        assert d.physical_reads == 1
        assert d.physical_writes == 1

    def test_bad_page_size_rejected(self):
        with pytest.raises(ValueError):
            DiskManager(page_size=0)


class TestBufferPoolBasics:
    def _pool(self, capacity=2):
        disk = DiskManager()
        counters = MetricsCounters()
        return disk, counters, BufferPool(disk, capacity=capacity, counters=counters)

    def test_miss_then_hit(self):
        disk, counters, pool = self._pool()
        pid = disk.allocate("x")
        assert pool.get(pid) == "x"
        assert counters.disk_reads == 1
        assert pool.get(pid) == "x"
        assert counters.disk_reads == 1
        assert counters.buffer_hits == 1

    def test_create_charges_no_read(self):
        disk, counters, pool = self._pool()
        pool.create("fresh")
        assert counters.disk_reads == 0

    def test_eviction_on_capacity(self):
        disk, counters, pool = self._pool(capacity=2)
        pids = [disk.allocate(i) for i in range(3)]
        pool.get(pids[0])
        pool.get(pids[1])
        pool.get(pids[2])  # evicts pids[0] under LRU
        assert not pool.is_resident(pids[0])
        assert pool.is_resident(pids[1])
        assert pool.is_resident(pids[2])

    def test_lru_order_updated_by_access(self):
        disk, counters, pool = self._pool(capacity=2)
        pids = [disk.allocate(i) for i in range(3)]
        pool.get(pids[0])
        pool.get(pids[1])
        pool.get(pids[0])  # refresh 0
        pool.get(pids[2])  # evicts 1, not 0
        assert pool.is_resident(pids[0])
        assert not pool.is_resident(pids[1])

    def test_dirty_eviction_writes_back(self):
        disk, counters, pool = self._pool(capacity=1)
        a = pool.create(["a"])
        payload = pool.get(a)
        payload.append("more")
        pool.mark_dirty(a)
        b = disk.allocate("b")
        pool.get(b)  # evicts a, which is dirty
        assert counters.disk_writes >= 1
        assert disk._pages[a] == ["a", "more"]

    def test_clean_eviction_no_write(self):
        disk, counters, pool = self._pool(capacity=1)
        a = disk.allocate("a")
        pool.get(a)
        writes_before = counters.disk_writes
        b = disk.allocate("b")
        pool.get(b)
        assert counters.disk_writes == writes_before

    def test_mark_dirty_faults_in_absent_page(self):
        disk, counters, pool = self._pool(capacity=2)
        a = disk.allocate("a")
        pool.mark_dirty(a)
        assert counters.disk_reads == 1
        assert pool.is_resident(a)

    def test_put_blind_overwrite_charges_no_read(self):
        disk, counters, pool = self._pool()
        a = disk.allocate("old")
        pool.put(a, "new")
        assert counters.disk_reads == 0
        assert pool.get(a) == "new"

    def test_flush_writes_all_dirty(self):
        disk, counters, pool = self._pool(capacity=4)
        a = pool.create("a")
        b = pool.create("b")
        pool.flush()
        assert disk._pages[a] == "a"
        assert disk._pages[b] == "b"
        assert counters.disk_writes == 2
        # A second flush writes nothing: pages are now clean.
        pool.flush()
        assert counters.disk_writes == 2

    def test_clear_cold_starts(self):
        disk, counters, pool = self._pool(capacity=4)
        a = pool.create("a")
        pool.clear()
        assert len(pool) == 0
        pool.get(a)
        assert counters.disk_reads == 1

    def test_drop_discards_without_writeback(self):
        disk, counters, pool = self._pool(capacity=4)
        a = pool.create("a")
        pool.drop(a)
        writes = counters.disk_writes
        pool.flush()
        assert counters.disk_writes == writes

    def test_zero_capacity_rejected(self):
        with pytest.raises(ValueError):
            BufferPool(DiskManager(), capacity=0)


class TestPolicies:
    def test_lru_evicts_least_recent(self):
        p = LRUPolicy()
        for pid in (1, 2, 3):
            p.record_access(pid)
        p.record_access(1)
        assert p.evict() == 2

    def test_fifo_ignores_reaccess(self):
        p = FIFOPolicy()
        for pid in (1, 2, 3):
            p.record_access(pid)
        p.record_access(1)
        assert p.evict() == 1

    def test_clock_gives_second_chance(self):
        p = ClockPolicy()
        for pid in (1, 2, 3):
            p.record_access(pid)
        p.record_access(1)  # sets referenced bit on 1
        assert p.evict() == 2  # 1 gets a second chance

    def test_evict_empty_raises(self):
        for p in (LRUPolicy(), FIFOPolicy(), ClockPolicy()):
            with pytest.raises(LookupError):
                p.evict()

    def test_remove_absent_is_noop(self):
        for p in (LRUPolicy(), FIFOPolicy(), ClockPolicy()):
            p.record_access(1)
            p.remove(99)
            assert len(p) == 1

    def test_contains_and_len(self):
        for p in (LRUPolicy(), FIFOPolicy(), ClockPolicy()):
            p.record_access(5)
            assert 5 in p
            assert 6 not in p
            assert len(p) == 1
            p.remove(5)
            assert 5 not in p
            assert len(p) == 0

    @given(
        st.lists(st.integers(min_value=0, max_value=9), min_size=1, max_size=200),
        st.integers(min_value=1, max_value=4),
    )
    def test_policies_never_exceed_capacity_in_pool(self, accesses, capacity):
        for policy in (LRUPolicy(), FIFOPolicy(), ClockPolicy()):
            disk = DiskManager()
            pids = [disk.allocate(i) for i in range(10)]
            pool = BufferPool(disk, capacity=capacity, policy=policy)
            for a in accesses:
                assert pool.get(pids[a]) == a
                assert len(pool) <= capacity

    @given(st.lists(st.integers(min_value=0, max_value=9), min_size=1, max_size=200))
    def test_lru_pool_matches_reference_simulation(self, accesses):
        """The pool's miss count must equal a textbook LRU simulation."""
        capacity = 3
        disk = DiskManager()
        pids = [disk.allocate(i) for i in range(10)]
        counters = MetricsCounters()
        pool = BufferPool(disk, capacity=capacity, counters=counters)

        resident = []
        expected_misses = 0
        for a in accesses:
            pool.get(pids[a])
            if a in resident:
                resident.remove(a)
            else:
                expected_misses += 1
                if len(resident) >= capacity:
                    resident.pop(0)
            resident.append(a)
        assert counters.disk_reads == expected_misses


class TestCounters:
    def test_snapshot_delta(self):
        c = MetricsCounters()
        before = c.snapshot()
        c.disk_reads += 3
        c.segment_comps += 2
        delta = c.since(before)
        assert delta.disk_reads == 3
        assert delta.segment_comps == 2
        assert delta.bbox_comps == 0
        assert delta.disk_accesses == 3

    def test_snapshot_add(self):
        from repro.storage import MetricsSnapshot

        a = MetricsSnapshot(1, 2, 3, 4, 5)
        b = MetricsSnapshot(10, 20, 30, 40, 50)
        assert a + b == MetricsSnapshot(11, 22, 33, 44, 55)

    def test_reset(self):
        c = MetricsCounters(disk_reads=5, bbox_comps=7)
        c.reset()
        assert c.snapshot() == MetricsCounters().snapshot()
