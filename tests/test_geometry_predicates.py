"""Unit and property tests for orientation predicates and angular order."""

import math

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.geometry import Point, orientation, pseudo_angle, segments_intersect
from repro.geometry.predicates import ccw_angle_from, collinear_point_on_segment

coords = st.integers(min_value=-1000, max_value=1000)
points = st.builds(Point, coords, coords)


class TestOrientation:
    def test_left_turn(self):
        assert orientation(Point(0, 0), Point(1, 0), Point(1, 1)) == 1

    def test_right_turn(self):
        assert orientation(Point(0, 0), Point(1, 0), Point(1, -1)) == -1

    def test_collinear(self):
        assert orientation(Point(0, 0), Point(1, 1), Point(3, 3)) == 0

    @given(points, points, points)
    def test_antisymmetry(self, a, b, c):
        assert orientation(a, b, c) == -orientation(a, c, b)

    @given(points, points, points)
    def test_cyclic_invariance(self, a, b, c):
        assert orientation(a, b, c) == orientation(b, c, a) == orientation(c, a, b)


class TestSegmentsIntersect:
    def test_crossing(self):
        assert segments_intersect(Point(0, 0), Point(2, 2), Point(0, 2), Point(2, 0))

    def test_shared_endpoint(self):
        assert segments_intersect(Point(0, 0), Point(1, 1), Point(1, 1), Point(2, 0))

    def test_t_junction(self):
        assert segments_intersect(Point(0, 0), Point(4, 0), Point(2, 0), Point(2, 3))

    def test_collinear_overlapping(self):
        assert segments_intersect(Point(0, 0), Point(4, 0), Point(2, 0), Point(6, 0))

    def test_collinear_disjoint(self):
        assert not segments_intersect(
            Point(0, 0), Point(1, 0), Point(3, 0), Point(5, 0)
        )

    def test_parallel_disjoint(self):
        assert not segments_intersect(
            Point(0, 0), Point(4, 0), Point(0, 1), Point(4, 1)
        )

    def test_near_miss(self):
        assert not segments_intersect(
            Point(0, 0), Point(2, 2), Point(3, 0), Point(5, 2)
        )

    @given(points, points, points, points)
    def test_symmetry(self, p1, p2, q1, q2):
        assert segments_intersect(p1, p2, q1, q2) == segments_intersect(q1, q2, p1, p2)

    @given(points, points)
    def test_self_intersection(self, p1, p2):
        assert segments_intersect(p1, p2, p1, p2)


class TestCollinearOnSegment:
    def test_midpoint(self):
        assert collinear_point_on_segment(Point(0, 0), Point(4, 4), Point(2, 2))

    def test_beyond_end(self):
        assert not collinear_point_on_segment(Point(0, 0), Point(4, 4), Point(5, 5))


class TestPseudoAngle:
    def test_zero_vector_raises(self):
        with pytest.raises(ValueError):
            pseudo_angle(0, 0)

    def test_axis_values(self):
        assert pseudo_angle(1, 0) == 0.0
        assert pseudo_angle(0, 1) == 1.0
        assert pseudo_angle(-1, 0) == 2.0
        assert pseudo_angle(0, -1) == 3.0

    @given(
        st.floats(min_value=0, max_value=2 * math.pi - 1e-9),
        st.floats(min_value=0, max_value=2 * math.pi - 1e-9),
    )
    def test_monotone_with_true_angle(self, t1, t2):
        """pseudo_angle orders directions exactly as atan2 does."""
        a1 = pseudo_angle(math.cos(t1), math.sin(t1))
        a2 = pseudo_angle(math.cos(t2), math.sin(t2))
        if abs(t1 - t2) > 1e-6:
            assert (t1 < t2) == (a1 < a2)

    @given(points.filter(lambda p: p != Point(0, 0)), st.integers(1, 100))
    def test_scale_invariant(self, p, k):
        assert pseudo_angle(p.x, p.y) == pytest.approx(pseudo_angle(k * p.x, k * p.y))


class TestCcwAngleFrom:
    def test_zero_for_same_direction(self):
        assert ccw_angle_from(1, 1, 2, 2) == 0.0

    def test_quarter_turn(self):
        assert ccw_angle_from(1, 0, 0, 1) == 1.0

    def test_wraps(self):
        assert ccw_angle_from(0, 1, 1, 0) == 3.0

    @given(points.filter(lambda p: p != Point(0, 0)))
    def test_range(self, p):
        base = (1, 0)
        v = ccw_angle_from(base[0], base[1], p.x, p.y)
        assert 0.0 <= v < 4.0
