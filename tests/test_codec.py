"""Round-trip tests for the byte-level page codecs."""

import io
import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.btree.node import InternalNode, LeafNode
from repro.core.rplus.node import RPlusNode
from repro.core.rtree.node import RTreeNode
from repro.geometry import Rect, Segment
from repro.storage import DiskManager, StorageContext
from repro.storage.codec import (
    CodecError,
    decode_btree_node,
    decode_rtree_node,
    decode_segment_page,
    dump_database,
    encode_btree_node,
    encode_rtree_node,
    encode_segment_page,
    load_database,
)

coords = st.integers(min_value=0, max_value=16383)


class TestRTreeNodeCodec:
    def test_roundtrip_leaf(self):
        node = RTreeNode(True, [(Rect(1, 2, 3, 4), 7), (Rect(0, 0, 10, 10), 9)])
        got = decode_rtree_node(encode_rtree_node(node, 1024))
        assert got.is_leaf == node.is_leaf
        assert got.entries == node.entries

    def test_roundtrip_internal(self):
        node = RTreeNode(False, [(Rect(0, 0, 100, 100), 3)])
        got = decode_rtree_node(encode_rtree_node(node, 1024))
        assert not got.is_leaf
        assert got.entries == node.entries

    def test_paper_capacity_exactly_fits(self):
        """50 entries of 20 bytes + 24-byte header = exactly 1 KiB."""
        node = RTreeNode(True, [(Rect(i, i, i + 1, i + 1), i) for i in range(50)])
        blob = encode_rtree_node(node, 1024)
        assert len(blob) <= 1024
        assert len(blob) == 8 + 50 * 20  # our header is 8 of the 24 budget

    def test_overflow_rejected(self):
        node = RTreeNode(True, [(Rect(i, i, i + 1, i + 1), i) for i in range(60)])
        with pytest.raises(CodecError):
            encode_rtree_node(node, 1024)

    def test_rplus_node_roundtrip(self):
        node = RPlusNode(False, [(Rect(0, 0, 512, 1024), 2), (Rect(512, 0, 1024, 1024), 3)])
        got = decode_rtree_node(encode_rtree_node(node, 1024), RPlusNode)
        assert isinstance(got, RPlusNode)
        assert got.entries == node.entries

    @settings(deadline=None, max_examples=50)
    @given(
        st.booleans(),
        st.lists(
            st.tuples(coords, coords, coords, coords, st.integers(0, 2**30)),
            max_size=50,
        ),
    )
    def test_roundtrip_property(self, is_leaf, raw):
        entries = [
            (Rect(min(a, c), min(b, d), max(a, c), max(b, d)), ref)
            for a, b, c, d, ref in raw
        ]
        node = RTreeNode(is_leaf, entries)
        got = decode_rtree_node(encode_rtree_node(node, 4096))
        assert got.entries == node.entries


class TestBTreeNodeCodec:
    def test_leaf_roundtrip(self):
        node = LeafNode([(5, 100), (7, 200)], next_page=42)
        got = decode_btree_node(encode_btree_node(node, 1024))
        assert got.is_leaf
        assert got.entries == node.entries
        assert got.next_page == 42

    def test_leaf_no_next(self):
        node = LeafNode([(5, 100)], next_page=None)
        got = decode_btree_node(encode_btree_node(node, 1024))
        assert got.next_page is None

    def test_internal_roundtrip(self):
        node = InternalNode(keys=[(10, 3), (20, 9)], children=[1, 2, 3])
        got = decode_btree_node(encode_btree_node(node, 1024))
        assert not got.is_leaf
        assert got.keys == node.keys
        assert got.children == node.children

    def test_depth14_morton_codes_fit(self):
        """Depth-14 codes occupy 28 bits: the paper's 4-byte field holds."""
        big = 4**14 - 1
        node = LeafNode([(big, 7)], next_page=None)
        got = decode_btree_node(encode_btree_node(node, 1024))
        assert got.entries == [(big, 7)]

    def test_oversize_code_rejected(self):
        node = LeafNode([(2**40, 7)], next_page=None)
        with pytest.raises(CodecError):
            encode_btree_node(node, 1024)

    def test_full_paper_leaf_fits_exactly(self):
        """120 leaf tuples of 8 bytes fit the 1 KiB page budget."""
        node = LeafNode([(i, i) for i in range(120)], next_page=3)
        blob = encode_btree_node(node, 1024)
        assert len(blob) <= 1024
        assert len(blob) == 16 + 120 * 8

    def test_full_internal_node_fits(self):
        """An internal node at the 12-byte-entry capacity fits a page."""
        from repro.storage import BTREE_PAGE_HEADER_BYTES
        from repro.storage.layout import BTREE_INTERNAL_ENTRY_BYTES, entries_per_page

        cap = entries_per_page(
            1024, BTREE_INTERNAL_ENTRY_BYTES, BTREE_PAGE_HEADER_BYTES
        )
        node = InternalNode(
            keys=[(i, i) for i in range(cap - 1)],
            children=list(range(cap)),
        )
        blob = encode_btree_node(node, 1024)
        assert len(blob) <= 1024

    def test_non_int_values_rejected(self):
        node = LeafNode([(5, (1, (0, 0, 1, 1)))], next_page=None)
        with pytest.raises(CodecError):
            encode_btree_node(node, 1024)

    def test_overflow_rejected(self):
        node = LeafNode([(i, i) for i in range(200)], next_page=None)
        with pytest.raises(CodecError):
            encode_btree_node(node, 1024)


class TestSegmentPageCodec:
    def test_roundtrip(self):
        segs = [Segment(1, 2, 3, 4), Segment(0, 0, 16383, 16383)]
        got = decode_segment_page(encode_segment_page(segs, 1024))
        assert got == segs

    def test_empty_page(self):
        assert decode_segment_page(encode_segment_page([], 1024)) == []

    @settings(deadline=None, max_examples=50)
    @given(st.lists(st.tuples(coords, coords, coords, coords), max_size=64))
    def test_roundtrip_property(self, raw):
        segs = [Segment(*t) for t in raw]
        got = decode_segment_page(encode_segment_page(segs, 1024))
        assert got == segs


class TestDatabaseSnapshot:
    def test_dump_load_full_index(self):
        """Persist a whole built structure and query the reloaded copy."""
        from repro.core import PMRQuadtree, RStarTree
        from repro.core.queries import window_query
        from tests.conftest import lattice_map

        segs = lattice_map(n=8, pitch=110)
        ctx = StorageContext.create()
        idx = RStarTree(ctx)
        for sid in ctx.load_segments(segs):
            idx.insert(sid)
        ctx.pool.flush()

        buf = io.BytesIO()
        n = dump_database(ctx.disk, buf)
        assert n == len(ctx.disk)

        buf.seek(0)
        disk2 = load_database(buf)
        assert len(disk2) == len(ctx.disk)
        assert disk2.page_size == ctx.disk.page_size

        # Transplant the reloaded pages under the original index and
        # re-run a query: results must be identical.
        expected = set(window_query(idx, Rect(0, 0, 1024, 1024)))
        ctx.disk._pages = disk2._pages
        ctx.pool.clear()
        got = set(window_query(idx, Rect(0, 0, 1024, 1024)))
        assert got == expected

    def test_dump_pmr_btree(self):
        from repro.core import PMRQuadtree
        from tests.conftest import TEST_DEPTH, TEST_WORLD, lattice_map

        segs = lattice_map(n=8, pitch=110)
        ctx = StorageContext.create()
        idx = PMRQuadtree(ctx, max_depth=TEST_DEPTH, world_size=TEST_WORLD)
        for sid in ctx.load_segments(segs):
            idx.insert(sid)
        ctx.pool.flush()
        buf = io.BytesIO()
        n = dump_database(ctx.disk, buf)
        buf.seek(0)
        disk2 = load_database(buf)
        assert len(disk2) == n

    def test_unknown_payload_rejected(self):
        disk = DiskManager()
        disk.allocate({"not": "serializable"})
        with pytest.raises(CodecError):
            dump_database(disk, io.BytesIO())

    def test_dump_load_rplus_with_fractional_splits(self):
        """R+ regions split at midpoints carry .5^k coordinates; they
        must survive the float32 on-disk format exactly."""
        from repro.core import RPlusTree
        from repro.core.queries import window_query
        from tests.conftest import TEST_WORLD, lattice_map

        segs = lattice_map(n=9, pitch=100, jitter=13, seed=6)
        ctx = StorageContext.create()
        idx = RPlusTree(ctx, world=Rect(0, 0, TEST_WORLD, TEST_WORLD), capacity=8)
        for sid in ctx.load_segments(segs):
            idx.insert(sid)
        ctx.pool.flush()

        expected = set(window_query(idx, Rect(50, 50, 900, 900)))
        buf = io.BytesIO()
        dump_database(ctx.disk, buf)
        buf.seek(0)
        disk2 = load_database(buf)
        ctx.disk._pages = disk2._pages
        ctx.pool.clear()
        idx.check_invariants()  # exact tiling must survive serialization
        assert set(window_query(idx, Rect(50, 50, 900, 900))) == expected
