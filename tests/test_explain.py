"""EXPLAIN: exact per-level attribution, goldens, and invariance.

The headline property is *exactness by construction*: the profiled
traversal paths perform identical pool traffic and counter charges, in
identical order, as the plain paths -- so summing a profile's buckets
reproduces the engine's counters to the unit, and an explained query
costs exactly what the plain query would have.
"""

import random

import pytest

from repro.analysis import check_index
from repro.metric_names import COUNTER_FIELDS
from repro.obs import MetricsRegistry, format_explain, merge_attributed
from repro.service import QueryEngine
from repro.service.api import Explain, NearestQuery, PointQuery, WindowQuery
from repro.storage.counters import MetricsCounters

from tests.conftest import build_index, lattice_map

EXPLAIN_STRUCTURES = ["R*", "R+", "PMR"]

#: One fixed query on the fixed 8x8 lattice, explained from a cold pool.
GOLDEN_WINDOW = (0, 0, 350, 350)

#: Exact per-level counts for GOLDEN_WINDOW per structure. Regenerate by
#: running the same query and printing ``report["plan"]["levels"]`` --
#: any change here means the traversal order or charging moved, which is
#: exactly what this test exists to catch.
GOLDEN_LEVELS = {
    "R*": [
        {"level": 0, "node_visits": 1, "disk_reads": 1, "bbox_comps": 4,
         "entries_examined": 4, "entries_matched": 3, "entries_pruned": 1},
        {"level": 1, "node_visits": 3, "disk_reads": 3, "bbox_comps": 81,
         "entries_examined": 81, "entries_matched": 18, "entries_pruned": 63},
    ],
    "R+": [
        {"level": 0, "node_visits": 1, "disk_reads": 1, "bbox_comps": 4,
         "entries_examined": 4, "entries_matched": 1, "entries_pruned": 3},
        {"level": 1, "node_visits": 1, "disk_reads": 1, "bbox_comps": 25,
         "entries_examined": 25, "entries_matched": 18, "entries_pruned": 7},
    ],
    "PMR": [
        {"level": 0, "node_visits": 1, "bbox_comps": 0},
        {"level": 1, "node_visits": 1, "bbox_comps": 0},
        {"level": 2, "node_visits": 4, "bbox_comps": 0},
        {"level": 3, "node_visits": 9, "bbox_comps": 9,
         "entries_examined": 9, "entries_matched": 9},
    ],
}

GOLDEN_COUNTS = {
    "R*": {"candidates": 18, "results": 18, "segment_fetches": 18},
    "R+": {"candidates": 18, "results": 18, "segment_fetches": 18},
    "PMR": {
        "blocks_decoded": 15,
        "btree_internal_visited": 4,
        "btree_leaves_scanned": 4,
        "btree_scans": 4,
        "candidates": 30,
        "duplicates_deduped": 12,
        "results": 18,
        "segment_fetches": 18,
    },
}


def make_engine(kind: str) -> QueryEngine:
    return QueryEngine(
        build_index(kind, lattice_map(n=8)), registry=MetricsRegistry()
    )


@pytest.fixture(params=EXPLAIN_STRUCTURES)
def explain_engine(request):
    return request.param, make_engine(request.param)


class TestExactness:
    def test_all_read_ops_attribute_exactly(self, explain_engine):
        _, engine = explain_engine
        for req in (
            PointQuery(100, 100),
            WindowQuery(0, 0, 350, 350),
            NearestQuery(321, 321, k=3),
        ):
            report = engine.execute(Explain(req))
            assert report["exact"] is True, report.get("unattributed")
            assert "unattributed" not in report
            assert report["plan"]["levels"], "profile recorded no levels"

    def test_summed_profiles_reproduce_engine_aggregates(self, explain_engine):
        """Acceptance: sum of per-level EXPLAIN deltas over a fixed-seed
        workload == the engine's aggregate counters, to the unit."""
        _, engine = explain_engine
        rng = random.Random(1992)
        reports = []
        for _ in range(30):
            roll = rng.random()
            if roll < 0.34:
                req = PointQuery(rng.randrange(900), rng.randrange(900))
            elif roll < 0.67:
                x, y = rng.randrange(700), rng.randrange(700)
                req = WindowQuery(x, y, x + 200, y + 200)
            else:
                req = NearestQuery(
                    rng.randrange(900), rng.randrange(900), k=rng.randrange(1, 4)
                )
            reports.append(engine.execute(Explain(req)))
        summed = merge_attributed(reports)
        totals = engine.totals.as_dict()
        for name in COUNTER_FIELDS:
            assert summed[name] == totals[name], name

    def test_explain_charges_exactly_what_plain_query_would(self):
        """Invariance: an explained query moves every MetricsCounters
        field identically to the plain query on a twin engine."""
        for kind in EXPLAIN_STRUCTURES:
            plain, explained = make_engine(kind), make_engine(kind)
            plain.cold_start()
            explained.cold_start()
            plain.window(0, 0, 350, 350, use_cache=False)
            explained.execute(Explain(WindowQuery(0, 0, 350, 350)))
            assert plain.totals == explained.totals, kind

    def test_explain_leaves_fsck_clean(self, explain_engine):
        _, engine = explain_engine
        before = [f.to_dict() for f in check_index(engine.index)]
        engine.execute(Explain(WindowQuery(0, 0, 350, 350)))
        engine.execute(Explain(NearestQuery(500, 500, k=2)))
        after = [f.to_dict() for f in check_index(engine.index)]
        assert before == after


class TestGolden:
    @pytest.mark.parametrize("kind", EXPLAIN_STRUCTURES)
    def test_fixed_window_per_level_counts(self, kind):
        engine = make_engine(kind)
        engine.cold_start()
        report = engine.execute(Explain(WindowQuery(*GOLDEN_WINDOW)))
        assert report["exact"] is True
        assert report["result_count"] == 18
        levels = report["plan"]["levels"]
        golden = GOLDEN_LEVELS[kind]
        assert len(levels) == len(golden)
        for got, want in zip(levels, golden):
            for key, value in want.items():
                assert got[key] == value, (kind, got["level"], key)
        assert report["plan"]["counts"] == GOLDEN_COUNTS[kind]

    def test_golden_attribution_totals(self):
        engine = make_engine("R*")
        engine.cold_start()
        report = engine.execute(Explain(WindowQuery(*GOLDEN_WINDOW)))
        attributed = report["plan"]["attributed"]
        assert attributed["disk_reads"] == 5
        assert attributed["bbox_comps"] == 85
        assert attributed["segment_comps"] == 18
        assert attributed["disk_accesses"] == attributed["disk_reads"]


class TestCacheAndSessions:
    def test_explain_bypasses_cache_but_reports_would_hit(self):
        engine = make_engine("R*")
        session = engine.session("probe")
        report = engine.execute(
            Explain(WindowQuery(0, 0, 350, 350)), session=session
        )
        assert report["cache"] == {"would_hit": False, "bypassed": True}
        engine.window(0, 0, 350, 350, session=session)  # now cached
        hits_before = engine.cache.hits
        report = engine.execute(
            Explain(WindowQuery(0, 0, 350, 350)), session=session
        )
        assert report["cache"]["would_hit"] is True
        assert engine.cache.hits == hits_before  # peek counted nothing

    def test_explain_is_attributed_to_the_session(self):
        engine = make_engine("R+")
        session = engine.session("alice")
        engine.execute(Explain(PointQuery(100, 100)), session=session)
        assert session.queries == 1
        assert engine.counters_consistent()
        total = MetricsCounters()
        total.merge(session.counters)
        assert total == engine.totals


class TestRendering:
    def test_format_explain_mentions_levels_and_exactness(self):
        engine = make_engine("PMR")
        report = engine.execute(Explain(WindowQuery(0, 0, 350, 350)))
        text = format_explain(report)
        assert "EXPLAIN window on PMR" in text
        assert "level 0" in text
        assert "segment_table" in text
        assert "attribution exact: True" in text

    def test_wire_parse_rejects_non_read_inner_op(self):
        from repro.errors import ProtocolError
        from repro.service.api import parse_request

        with pytest.raises(ProtocolError):
            parse_request({"op": "explain", "query": {"op": "stats"}})
        with pytest.raises(ProtocolError):
            parse_request({"op": "explain"})
