"""Tests for the ASCII renderers and the window-query modes."""

import pytest

from repro.core.queries import window_query
from repro.geometry import Rect, Segment
from repro.viz import render_pmr_blocks, render_rtree_leaves, render_segments

from tests.conftest import TEST_WORLD, build_index, lattice_map


class TestWindowModes:
    def _index(self):
        return build_index(
            "R*", [Segment(100, 100, 300, 100), Segment(150, 50, 150, 250)]
        )

    def test_intersects_includes_crossers(self):
        idx = self._index()
        got = window_query(idx, Rect(140, 90, 200, 120), mode="intersects")
        assert set(got) == {0, 1}

    def test_contains_requires_full_containment(self):
        idx = self._index()
        got = window_query(idx, Rect(140, 90, 200, 120), mode="contains")
        assert got == []
        got = window_query(idx, Rect(90, 90, 310, 110), mode="contains")
        assert got == [0]

    def test_default_is_intersects(self):
        idx = self._index()
        assert window_query(idx, Rect(140, 90, 200, 120)) == window_query(
            idx, Rect(140, 90, 200, 120), mode="intersects"
        )

    def test_bad_mode_rejected(self):
        idx = self._index()
        with pytest.raises(ValueError):
            window_query(idx, Rect(0, 0, 1, 1), mode="touches")

    def test_contains_subset_of_intersects(self):
        segs = lattice_map(n=6, pitch=110)
        idx = build_index("PMR", segs)
        w = Rect(150, 150, 600, 600)
        inside = set(window_query(idx, w, mode="contains"))
        crossing = set(window_query(idx, w, mode="intersects"))
        assert inside <= crossing


class TestRenderers:
    def test_render_segments_shape(self):
        segs = [Segment(0, 0, 1000, 1000)]
        art = render_segments(segs, 1024, width=20, height=10)
        lines = art.splitlines()
        assert len(lines) == 12  # body + 2 border lines
        assert all(len(line) == 22 for line in lines)
        assert "*" in art

    def test_diagonal_is_connected(self):
        art = render_segments([Segment(0, 0, 1023, 1023)], 1024, 16, 16)
        body = art.splitlines()[1:-1]
        # Every row the diagonal passes gets at least one mark.
        assert all("*" in row for row in body)

    def test_rect_overlay(self):
        art = render_segments(
            [], 1024, 20, 10, overlay_rects=[Rect(100, 100, 900, 900)]
        )
        assert "+" in art and "-" in art and "|" in art

    def test_size_validation(self):
        with pytest.raises(ValueError):
            render_segments([], 1024, width=1, height=5)

    def test_render_pmr_blocks_counters_untouched(self):
        idx = build_index("PMR", lattice_map(n=6, pitch=110))
        before = idx.ctx.counters.snapshot()
        art = render_pmr_blocks(idx, width=32, height=16)
        assert idx.ctx.counters.snapshot() == before
        assert "*" in art

    def test_render_rtree_leaves(self):
        idx = build_index("R*", lattice_map(n=8, pitch=100))
        art = render_rtree_leaves(idx, TEST_WORLD, width=40, height=20)
        assert "*" in art
        assert "-" in art  # leaf MBR outlines present
