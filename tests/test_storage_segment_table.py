"""Tests for the segment table and storage context."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.geometry import Segment
from repro.storage import SEGMENT_RECORD_BYTES, StorageContext, entries_per_page


def make_context(page_size=1024, pool_pages=16):
    return StorageContext.create(page_size=page_size, pool_pages=pool_pages)


class TestLayout:
    def test_paper_capacities(self):
        """The capacities the paper states for 1 KiB pages."""
        from repro.storage import (
            BTREE_PAGE_HEADER_BYTES,
            PMR_TUPLE_BYTES,
            RTREE_PAGE_HEADER_BYTES,
            RTREE_TUPLE_BYTES,
        )

        assert entries_per_page(1024, RTREE_TUPLE_BYTES, RTREE_PAGE_HEADER_BYTES) == 50
        assert entries_per_page(1024, PMR_TUPLE_BYTES, BTREE_PAGE_HEADER_BYTES) == 120
        assert entries_per_page(1024, SEGMENT_RECORD_BYTES) == 64

    def test_rejects_nonsense(self):
        with pytest.raises(ValueError):
            entries_per_page(0, 8)
        with pytest.raises(ValueError):
            entries_per_page(64, 128)
        with pytest.raises(ValueError):
            entries_per_page(100, 8, header_bytes=-1)


class TestSegmentTable:
    def test_append_assigns_sequential_ids(self):
        ctx = make_context()
        ids = [ctx.segments.append(Segment(i, i, i + 1, i + 1)) for i in range(5)]
        assert ids == [0, 1, 2, 3, 4]
        assert len(ctx.segments) == 5

    def test_fetch_roundtrip(self):
        ctx = make_context()
        s = Segment(1, 2, 3, 4)
        sid = ctx.segments.append(s)
        assert ctx.segments.fetch(sid) == s

    def test_fetch_counts_segment_comparison(self):
        ctx = make_context()
        sid = ctx.segments.append(Segment(0, 0, 1, 1))
        before = ctx.counters.segment_comps
        ctx.segments.fetch(sid)
        ctx.segments.fetch(sid)
        assert ctx.counters.segment_comps == before + 2

    def test_peek_counts_nothing(self):
        ctx = make_context()
        sid = ctx.segments.append(Segment(0, 0, 1, 1))
        ctx.pool.flush()
        before = ctx.counters.snapshot()
        assert ctx.segments.peek(sid) == Segment(0, 0, 1, 1)
        assert ctx.counters.snapshot() == before

    def test_fetch_out_of_range(self):
        ctx = make_context()
        with pytest.raises(IndexError):
            ctx.segments.fetch(0)
        ctx.segments.append(Segment(0, 0, 1, 1))
        with pytest.raises(IndexError):
            ctx.segments.fetch(1)
        with pytest.raises(IndexError):
            ctx.segments.fetch(-1)

    def test_page_count_growth(self):
        ctx = make_context(page_size=1024)
        per_page = ctx.segments.per_page
        assert per_page == 64
        for i in range(per_page):
            ctx.segments.append(Segment(i, 0, i, 1))
        assert ctx.segments.page_count == 1
        ctx.segments.append(Segment(0, 0, 0, 1))
        assert ctx.segments.page_count == 2
        assert ctx.segments.bytes_used == 2048

    def test_locality_of_sequential_fetches(self):
        """Fetching nearby ids must mostly hit the pool (paper's locality claim)."""
        ctx = make_context()
        for i in range(200):
            ctx.segments.append(Segment(i, 0, i + 1, 0))
        ctx.pool.clear()
        before = ctx.counters.disk_reads
        for i in range(64):
            ctx.segments.fetch(i)
        # 64 segments share one page: exactly one miss.
        assert ctx.counters.disk_reads == before + 1

    @given(st.lists(st.integers(0, 16383), min_size=4, max_size=400))
    def test_roundtrip_many(self, values):
        ctx = make_context(page_size=256, pool_pages=4)
        segs = [
            Segment(values[i], values[(i + 1) % len(values)], values[(i + 2) % len(values)], values[(i + 3) % len(values)])
            for i in range(len(values))
        ]
        ids = ctx.segments.extend(segs)
        for sid, s in zip(ids, segs):
            assert ctx.segments.fetch(sid) == s
            assert ctx.segments.peek(sid) == s


class TestStorageContext:
    def test_create_defaults(self):
        ctx = StorageContext.create()
        assert ctx.page_size == 1024
        assert ctx.pool.capacity == 16
        assert ctx.pool.counters is ctx.counters

    def test_load_segments(self):
        ctx = StorageContext.create()
        ids = ctx.load_segments([Segment(0, 0, 1, 1), Segment(1, 1, 2, 2)])
        assert ids == [0, 1]
        assert len(ctx.segments) == 2
