"""The runtime lock-order sanitizer and deterministic thread shutdown.

The decisive property: a lock-order inversion is reported from a
*staged* schedule in which the two threads never actually collide --
thread one takes A then B and exits, thread two then takes B then A.
No deadlock occurs, yet the ordering graph has a cycle, and that is
what crash-injection and shard-smoke runs need to surface.
"""

from __future__ import annotations

import threading

import pytest

from repro.sanitize import (
    SANITIZER,
    LockOrderSanitizer,
    TrackedCondition,
    TrackedLock,
    enabled_from_env,
)
from repro.storage.latch import Latch


@pytest.fixture()
def sanitizer():
    """The process-wide sanitizer, enabled and isolated for one test."""
    SANITIZER.reset()
    SANITIZER.enable()
    yield SANITIZER
    SANITIZER.disable()
    SANITIZER.reset()


# ----------------------------------------------------------------------
# The core property: inversions are caught without a deadlock
# ----------------------------------------------------------------------
class TestPotentialDeadlock:
    def test_staged_ab_ba_inversion_is_reported(self, sanitizer):
        a = TrackedLock("A")
        b = TrackedLock("B")

        def ab():
            with a:
                with b:
                    pass

        def ba():
            with b:
                with a:
                    pass

        # Run strictly sequentially: no two threads ever contend, so
        # this can never deadlock -- but the schedules are inverted.
        t1 = threading.Thread(target=ab)
        t1.start()
        t1.join()
        t2 = threading.Thread(target=ba)
        t2.start()
        t2.join()

        report = sanitizer.report()
        assert len(report["potential_deadlocks"]) == 1
        cycle = report["potential_deadlocks"][0]
        assert set(cycle["cycle"]) == {"A", "B"}
        # Both edges carry provenance (thread name + file:line).
        assert all(e["site"] != "?" for e in cycle["edges"])
        assert "POTENTIAL DEADLOCK" in sanitizer.format_report()

    def test_consistent_order_is_silent(self, sanitizer):
        a = TrackedLock("A")
        b = TrackedLock("B")
        for _ in range(3):
            with a:
                with b:
                    pass
        report = sanitizer.report()
        assert report["potential_deadlocks"] == []
        assert report["edges"] == 1  # A -> B, deduplicated

    def test_three_lock_cycle(self, sanitizer):
        a, b, c = TrackedLock("A"), TrackedLock("B"), TrackedLock("C")
        with a:
            with b:
                pass
        with b:
            with c:
                pass
        with c:
            with a:
                pass  # closes A -> B -> C -> A
        report = sanitizer.report()
        assert len(report["potential_deadlocks"]) == 1
        assert set(report["potential_deadlocks"][0]["cycle"]) == {"A", "B", "C"}

    def test_duplicate_cycles_reported_once(self, sanitizer):
        a = TrackedLock("A")
        b = TrackedLock("B")
        for _ in range(5):
            with a:
                with b:
                    pass
            with b:
                with a:
                    pass
        assert len(sanitizer.report()["potential_deadlocks"]) == 1


# ----------------------------------------------------------------------
# Blocking-under-lock accounting
# ----------------------------------------------------------------------
class TestBlocking:
    def test_blocking_tallied_only_under_lock(self, sanitizer):
        lock = TrackedLock("io")
        sanitizer.note_blocking("fsync", "nowhere")  # no lock held: ignored
        with lock:
            sanitizer.note_blocking("fsync", "somewhere")
            sanitizer.note_blocking("fsync", "somewhere")
        held = sanitizer.report()["held_across_blocking"]
        assert held == {"fsync@somewhere holding io": 2}

    def test_wal_group_commit_is_counted(self, sanitizer, tmp_path):
        from repro.geometry import Segment
        from repro.wal.log import WriteAheadLog

        wal = WriteAheadLog.create(str(tmp_path / "repro.wal"))
        wal.log_insert(1, Segment(0, 0, 10, 10))
        wal.commit()
        wal.close()
        held = sanitizer.report()["held_across_blocking"]
        assert any("wal.log:_sync_locked" in key for key in held)


# ----------------------------------------------------------------------
# Disabled = dormant
# ----------------------------------------------------------------------
class TestDisabled:
    def test_no_tracking_when_disabled(self):
        san = LockOrderSanitizer()
        lock = TrackedLock("x")
        with lock:
            pass
        assert san.report()["acquisitions"] == 0
        assert SANITIZER.report()["acquisitions"] == 0 or SANITIZER.enabled

    def test_global_sanitizer_disabled_by_default(self):
        # The suite must not run instrumented unless a test asked for it.
        assert not SANITIZER.enabled or enabled_from_env()

    def test_env_parsing(self):
        assert enabled_from_env({"REPRO_SANITIZE": "1"})
        assert enabled_from_env({"REPRO_SANITIZE": "true"})
        assert enabled_from_env({"REPRO_SANITIZE": " ON "})
        assert not enabled_from_env({"REPRO_SANITIZE": "0"})
        assert not enabled_from_env({"REPRO_SANITIZE": ""})
        assert not enabled_from_env({})


# ----------------------------------------------------------------------
# Primitive semantics
# ----------------------------------------------------------------------
class TestPrimitives:
    def test_tracked_lock_is_a_real_lock(self, sanitizer):
        lock = TrackedLock("x")
        assert lock.acquire()
        assert lock.locked()
        assert not lock.acquire(blocking=False)  # non-reentrant
        lock.release()
        assert not lock.locked()

    def test_reentrant_tracked_lock(self, sanitizer):
        lock = TrackedLock("r", reentrant=True)
        with lock:
            with lock:
                pass
        # A reentrant re-acquire is not an ordering edge (no self-edge).
        assert sanitizer.report()["edges"] == 0
        assert sanitizer.report()["potential_deadlocks"] == []

    def test_release_of_unknown_name_is_tolerated(self, sanitizer):
        sanitizer.note_release("never-acquired")  # must not raise

    def test_tracked_condition_orders_like_a_lock(self, sanitizer):
        gate = TrackedCondition("gate")
        inner = TrackedLock("inner")
        with gate:
            gate.notify_all()
            with inner:
                pass
        report = sanitizer.report()
        assert report["edges"] == 1
        assert report["potential_deadlocks"] == []

    def test_latch_reports_to_sanitizer(self, sanitizer):
        latch = Latch("pool")
        cache = TrackedLock("cache")
        with latch:
            with latch:  # reentrant: no extra acquisition edge
                with cache:
                    pass
        report = sanitizer.report()
        assert report["acquisitions"] == 2  # latch once, cache once
        assert report["edges"] == 1  # latch:pool -> cache

    def test_held_locks_is_per_thread(self, sanitizer):
        lock = TrackedLock("mine")
        seen = {}

        def other():
            seen["other"] = SANITIZER.held_locks()

        with lock:
            t = threading.Thread(target=other)
            t.start()
            t.join()
            assert SANITIZER.held_locks() == ("mine",)
        assert seen["other"] == ()


# ----------------------------------------------------------------------
# Deterministic shutdown (the satellite bugfix)
# ----------------------------------------------------------------------
class TestShutdown:
    def test_map_server_stop_joins_accept_thread(self):
        from repro.service import MapServer, QueryEngine

        from tests.conftest import build_index, lattice_map

        engine = QueryEngine(build_index("R*", lattice_map(n=4)))
        server = MapServer(engine)
        thread = server.start_background()
        assert thread.is_alive()
        server.stop()
        assert not thread.is_alive()
        assert server._serve_thread is None

    def test_router_close_joins_serve_thread(self, tmp_path):
        from repro.data import generate_county
        from repro.shard import LocalShardSet, ShardRouter, init_shard_set

        init_shard_set(
            str(tmp_path),
            "R*",
            map_data=generate_county("cecil", scale=0.01),
            n_shards=2,
        )
        with LocalShardSet(str(tmp_path)):
            router = ShardRouter(str(tmp_path))
            thread = router.start_background()
            assert thread.is_alive()
            router.close()
            assert not thread.is_alive()
            assert router._serve_thread is None

    def test_loadgen_worker_threads_are_named_and_joined(self):
        from repro.service import bench_serve

        report = bench_serve(
            county="cecil", scale=0.01, threads=2, requests=8, seed=0
        )
        assert report.errors == 0
        # No loadgen or map-server thread may outlive the bench.
        lingering = [
            t.name
            for t in threading.enumerate()
            if t.name.startswith(("loadgen-", "map-server"))
        ]
        assert lingering == []
