"""Crash injection: every crash point must recover to the oracle state.

The matrix (:mod:`repro.wal.crashtest`) truncates or corrupts the log at
every byte-boundary class of every record, interrupts the checkpoint
protocol at each step, and corrupts the checkpoint snapshot itself. Each
recovered store must answer probes identically to a never-crashed
oracle, replay exactly the post-checkpoint suffix, and fsck clean. A
final test kills a real server process with SIGKILL mid-traffic.
"""

import json
import os
import signal
import socket
import subprocess
import sys
import time

import pytest

from repro.wal.crashtest import STRUCTURES, run_crash_matrix

# The whole module runs under the runtime lock-order sanitizer: recovery
# and checkpointing take the WAL lock and the pool latch in sequence, and
# any inversion introduced here must fail the suite even on schedules
# that happen not to deadlock.
pytestmark = pytest.mark.usefixtures("lock_sanitizer")


@pytest.mark.parametrize("kind", STRUCTURES)
def test_crash_matrix(kind, tmp_path):
    report = run_crash_matrix(str(tmp_path), kind=kind)
    assert len(report.outcomes) >= 20  # per-record cuts + flips + ckpt + media
    assert report.failures == [], report.summary() + "".join(
        f"\n  {o.case}: {o.detail}" for o in report.failures
    )


def test_crash_matrix_hilbert_replay(tmp_path):
    report = run_crash_matrix(str(tmp_path), kind="R*", replay_order="hilbert")
    assert report.failures == [], report.summary()


class TestKillDashNine:
    """A real process, real sockets, and an honest SIGKILL."""

    def _request(self, port, obj):
        with socket.create_connection(("127.0.0.1", port), timeout=10) as sock:
            sock.sendall(json.dumps(obj).encode("utf-8") + b"\n")
            return json.loads(sock.makefile("rb").readline())

    def test_kill_recover_fsck(self, tmp_path):
        env = dict(os.environ)
        src = os.path.join(os.path.dirname(__file__), os.pardir, "src")
        env["PYTHONPATH"] = os.path.abspath(src)
        store = str(tmp_path / "store")
        proc = subprocess.Popen(
            [
                sys.executable, "-m", "repro", "serve",
                "--wal", store, "--scale", "0.01", "--port", "0",
            ],
            env=env, stdout=subprocess.PIPE, stderr=subprocess.STDOUT,
            text=True,
        )
        try:
            port = None
            deadline = time.monotonic() + 60
            while time.monotonic() < deadline:
                line = proc.stdout.readline()
                if not line:
                    break
                if "serving" in line:
                    port = int(line.split("on 127.0.0.1:")[1].split(" ")[0])
                    break
            assert port is not None, "server never announced its port"

            inserted = self._request(
                port, {"op": "insert", "x1": 3, "y1": 4, "x2": 55, "y2": 66}
            )
            assert inserted["ok"]
            assert self._request(port, {"op": "checkpoint"})["ok"]
            assert self._request(
                port, {"op": "insert", "x1": 9, "y1": 9, "x2": 42, "y2": 17}
            )["ok"]
            stats = self._request(port, {"op": "stats"})["result"]
            assert stats["durable"] and stats["last_lsn"] == 2
        finally:
            os.kill(proc.pid, signal.SIGKILL)
            proc.wait()

        out = subprocess.run(
            [sys.executable, "-m", "repro", "recover", "--wal", store],
            env=env, capture_output=True, text=True, timeout=120,
        )
        assert out.returncode == 0, out.stdout + out.stderr
        assert "1 record(s) replayed" in out.stdout  # only the suffix

        out = subprocess.run(
            [sys.executable, "-m", "repro", "check", "--wal", store],
            env=env, capture_output=True, text=True, timeout=120,
        )
        assert out.returncode == 0, out.stdout + out.stderr
        assert "clean" in out.stdout
