"""The async scatter-gather router against a live local shard set.

Same :class:`RouterCore` as the threaded router, served by the asyncio
front end: routed answers must match the threaded router's exactly,
pipelined v2 requests fan out concurrently, ``reload`` drains and swaps
under in-flight traffic, and a down shard degrades to the same
structured partial the threaded router serves.
"""

import asyncio

import pytest

from repro.aio import AsyncMapClient, AsyncShardRouter
from repro.data.counties import generate_county
from repro.service.server import send_request
from repro.shard import LocalShardSet, ShardRouter, init_shard_set

SCALE = 0.01
N_SHARDS = 3
PAGE_SIZE = 2048


@pytest.fixture(scope="module")
def shard_root(tmp_path_factory):
    root = tmp_path_factory.mktemp("aio_shards")
    map_data = generate_county("cecil", scale=SCALE)
    init_shard_set(
        root, "R*", map_data=map_data, n_shards=N_SHARDS, page_size=PAGE_SIZE
    )
    with LocalShardSet(root) as shards:
        yield root, shards, map_data


@pytest.fixture()
def routers(shard_root):
    root, shards, map_data = shard_root
    threaded = ShardRouter(root)
    threaded.start_background()
    async_router = AsyncShardRouter(root)
    async_router.start_background()
    yield threaded, async_router, shards, map_data
    async_router.stop()
    threaded.close()


def _v2(address, ops):
    async def main():
        client = await AsyncMapClient.connect(address)
        try:
            return await asyncio.gather(*[client.request(op) for op in ops])
        finally:
            await client.close()

    return asyncio.run(main())


class TestRoutedEquivalence:
    def test_v1_ping(self, routers):
        _threaded, async_router, _shards, _map_data = routers
        r = send_request(async_router.address, {"op": "ping"})
        assert r == {"ok": True, "result": "pong"}

    def test_window_matches_threaded_router(self, routers):
        threaded, async_router, _shards, map_data = routers
        world = map_data.world_size
        queries = [
            {"op": "window", "x1": 0, "y1": 0, "x2": world, "y2": world},
            {"op": "window", "x1": 0, "y1": 0, "x2": world / 3, "y2": world / 3},
            {"op": "point", "x": world / 2, "y": world / 2},
            {"op": "nearest", "x": world / 4, "y": world / 4, "k": 5},
        ]
        golden = [send_request(threaded.address, q) for q in queries]
        piped = _v2(async_router.address, queries)
        for q, want, got in zip(queries, golden, piped):
            assert want == got, f"async router diverged on {q}"

    def test_stats_sees_every_shard(self, routers):
        _threaded, async_router, _shards, _map_data = routers
        (r,) = _v2(async_router.address, [{"op": "stats"}])
        assert r["ok"], r
        assert sorted(r["result"]["shards"]) == [
            f"s{i}" for i in range(N_SHARDS)
        ]
        assert r["result"]["counters_consistent"] is True

    def test_reload_under_pipelined_traffic(self, routers):
        _threaded, async_router, _shards, map_data = routers
        world = map_data.world_size
        window = {"op": "window", "x1": 0, "y1": 0, "x2": world, "y2": world}
        results = _v2(
            async_router.address, [window, {"op": "reload"}, window, window]
        )
        assert all(r["ok"] for r in results), results
        reload_result = results[1]["result"]
        assert reload_result["epoch"] >= 1
        assert len(reload_result["shards"]) == N_SHARDS
        assert results[0]["result"] == results[2]["result"] == results[3]["result"]

    def test_down_shard_degrades_to_structured_partial(self, routers):
        _threaded, async_router, shards, map_data = routers
        world = map_data.world_size
        down = sorted(async_router.clients)[0]
        shards.stop(down)
        try:
            (resp,) = _v2(
                async_router.address,
                [{"op": "window", "x1": 0, "y1": 0, "x2": world, "y2": world}],
            )
            assert not resp["ok"], resp
            assert resp["error"]["code"] == "shard_unavailable"
            assert resp["error"]["shard"] == down
            assert resp["partial"]["shards"]
        finally:
            shards.start(down)
        # Healed: the router re-reads the worker's published address.
        (resp,) = _v2(
            async_router.address,
            [{"op": "window", "x1": 0, "y1": 0, "x2": world, "y2": world}],
        )
        assert resp["ok"], resp
