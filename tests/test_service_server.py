"""The JSON-over-TCP map server and the bench-serve load generator."""

import json
import socket

import pytest

from repro.service import MapServer, QueryEngine, bench_serve, send_request
from repro.service.loadgen import percentile

from tests.conftest import build_index, lattice_map


@pytest.fixture()
def server():
    engine = QueryEngine(build_index("R*", lattice_map(n=8)))
    srv = MapServer(engine)  # port 0: ephemeral
    srv.start_background()
    yield srv
    srv.shutdown()
    srv.server_close()


class TestProtocol:
    def test_ping(self, server):
        assert send_request(server.address, {"op": "ping"}) == {
            "ok": True,
            "result": "pong",
        }

    def test_point_and_window(self, server):
        r = send_request(server.address, {"op": "point", "x": 100, "y": 100})
        assert r["ok"] and isinstance(r["result"], list)
        r = send_request(
            server.address,
            {"op": "window", "x1": 0, "y1": 0, "x2": 400, "y2": 400},
        )
        assert r["ok"] and len(r["result"]) > 0

    def test_nearest(self, server):
        r = send_request(server.address, {"op": "nearest", "x": 300, "y": 300, "k": 2})
        assert r["ok"]
        assert len(r["result"]) == 2
        assert r["result"][0][1] <= r["result"][1][1]

    def test_batch(self, server):
        r = send_request(
            server.address,
            {
                "op": "batch",
                "order": "morton",
                "requests": [
                    {"op": "point", "x": 100, "y": 100},
                    {"op": "window", "x1": 0, "y1": 0, "x2": 200, "y2": 200},
                ],
            },
        )
        assert r["ok"]
        assert len(r["result"]["results"]) == 2
        assert r["result"]["order"] == "morton"

    def test_insert_then_query_sees_it(self, server):
        r = send_request(
            server.address,
            {"op": "insert", "x1": 5, "y1": 5, "x2": 30, "y2": 35},
        )
        assert r["ok"]
        seg_id = r["result"]
        r = send_request(server.address, {"op": "point", "x": 5, "y": 5})
        assert seg_id in r["result"]
        r = send_request(server.address, {"op": "delete", "seg_id": seg_id})
        assert r["ok"]
        r = send_request(server.address, {"op": "point", "x": 5, "y": 5})
        assert seg_id not in r["result"]

    def test_stats(self, server):
        send_request(server.address, {"op": "point", "x": 100, "y": 100})
        r = send_request(server.address, {"op": "stats"})
        assert r["ok"]
        stats = r["result"]
        assert stats["counters_consistent"] is True
        assert stats["index"]["kind"] == "R*"
        assert any(s["name"].startswith("conn-") for s in stats["sessions"])

    def test_unknown_op_is_error_not_disconnect(self, server):
        with socket.create_connection(server.address, timeout=10) as sock:
            with sock.makefile("rwb") as fh:
                fh.write(b'{"op": "bogus"}\n')
                fh.flush()
                assert json.loads(fh.readline())["ok"] is False
                fh.write(b'{"op": "ping"}\n')  # connection survived
                fh.flush()
                assert json.loads(fh.readline())["result"] == "pong"

    def test_malformed_json_is_error(self, server):
        with socket.create_connection(server.address, timeout=10) as sock:
            with sock.makefile("rwb") as fh:
                fh.write(b"this is not json\n")
                fh.flush()
                response = json.loads(fh.readline())
        assert response["ok"] is False
        assert "error" in response

    def test_unknown_seg_id_delete_is_structured_error(self, server):
        with socket.create_connection(server.address, timeout=10) as sock:
            with sock.makefile("rwb") as fh:
                fh.write(b'{"op": "delete", "seg_id": 999999}\n')
                fh.flush()
                response = json.loads(fh.readline())
                assert response["ok"] is False
                assert response["error"]["code"] == "unknown_seg"
                assert "unknown segment id 999999" in response["error"]["message"]
                fh.write(b'{"op": "ping"}\n')  # connection survived
                fh.flush()
                assert json.loads(fh.readline())["result"] == "pong"

    def test_malformed_mutation_args_are_structured_errors(self, server):
        cases = [
            ({"op": "insert", "x1": 0, "y1": 0, "x2": 10}, "y2"),
            ({"op": "insert", "x1": "abc", "y1": 0, "x2": 1, "y2": 1}, "x1"),
            ({"op": "delete"}, "seg_id"),
            ({"op": "delete", "seg_id": "seven"}, "seg_id"),
            ({"op": "delete", "seg_id": True}, "seg_id"),
        ]
        with socket.create_connection(server.address, timeout=10) as sock:
            with sock.makefile("rwb") as fh:
                for request, field in cases:
                    fh.write(json.dumps(request).encode("utf-8") + b"\n")
                    fh.flush()
                    response = json.loads(fh.readline())
                    assert response["ok"] is False, request
                    assert response["error"]["code"] == "bad_args", request
                    assert field in response["error"]["message"], request
                # One connection survived every bad mutation in sequence.
                fh.write(b'{"op": "ping"}\n')
                fh.flush()
                assert json.loads(fh.readline())["result"] == "pong"

    def test_checkpoint_on_non_durable_server_is_error(self, server):
        response = send_request(server.address, {"op": "checkpoint"})
        assert response["ok"] is False
        assert response["error"]["code"] == "not_durable"
        assert "durable" in response["error"]["message"]

    def test_one_session_per_connection(self, server):
        for _ in range(2):
            send_request(server.address, {"op": "point", "x": 60, "y": 60})
        stats = send_request(server.address, {"op": "stats"})["result"]
        conn_sessions = [
            s for s in stats["sessions"] if s["name"].startswith("conn-")
        ]
        assert len(conn_sessions) >= 3  # two queries + this stats call


class TestDurableServer:
    @pytest.fixture()
    def durable_server(self, tmp_path):
        from repro.wal import DurableStore

        index = build_index("R*", lattice_map(n=6))
        store = DurableStore.create(tmp_path / "store", index)
        engine = QueryEngine(index, store=store)
        srv = MapServer(engine)
        srv.start_background()
        yield srv
        srv.shutdown()
        srv.server_close()
        store.close()

    def test_checkpoint_op(self, durable_server):
        addr = durable_server.address
        r = send_request(addr, {"op": "insert", "x1": 5, "y1": 5, "x2": 9, "y2": 9})
        assert r["ok"]
        r = send_request(addr, {"op": "checkpoint"})
        assert r["ok"]
        assert r["result"]["checkpoint_lsn"] == 1
        assert r["result"]["folded_records"] == 1
        stats = send_request(addr, {"op": "stats"})["result"]
        assert stats["durable"] is True
        assert stats["last_lsn"] == 1
        assert stats["wal"]["checkpoints"] == 1
        assert stats["counters_consistent"] is True


class TestBenchServe:
    def test_four_thread_run(self):
        report = bench_serve(
            county="cecil", scale=0.01, threads=4, requests=60, seed=1
        )
        assert report.errors == 0
        assert report.requests == 60
        assert report.counters_consistent is True
        assert report.throughput_qps > 0
        assert report.latency_ms["p50"] <= report.latency_ms["p99"]
        # acceptance: batching by Morton key costs fewer disk accesses
        assert (
            report.batch_comparison["morton"] <= report.batch_comparison["arrival"]
        )

    def test_report_formats(self):
        from repro.service import format_bench_report

        report = bench_serve(county="cecil", scale=0.01, threads=2, requests=20)
        text = format_bench_report(report)
        assert "throughput" not in text  # human units, not field names
        assert "q/s" in text and "p99" in text and "morton" in text


class TestPercentile:
    def test_empty(self):
        assert percentile([], 0.5) == 0.0

    def test_nearest_rank(self):
        values = [1.0, 2.0, 3.0, 4.0]
        assert percentile(values, 0.5) == 2.0
        assert percentile(values, 0.99) == 4.0
        assert percentile(values, 0.01) == 1.0
