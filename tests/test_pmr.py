"""Tests for the PMR quadtree and its locational-code machinery."""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.pmr import PMRBlock, PMRQuadtree, deinterleave, interleave, locational_code
from repro.geometry import Point, Rect, Segment
from repro.storage import StorageContext

from tests.conftest import (
    TEST_DEPTH,
    TEST_WORLD,
    lattice_map,
    oracle_at_point,
    oracle_in_window,
    random_planar_segments,
)


def build(segments, threshold=4, page_size=1024, **kw):
    ctx = StorageContext.create(page_size=page_size)
    idx = PMRQuadtree(
        ctx, threshold=threshold, max_depth=TEST_DEPTH, world_size=TEST_WORLD, **kw
    )
    for sid in ctx.load_segments(segments):
        idx.insert(sid)
    return idx


class TestLocationalCodes:
    @given(st.integers(0, 0xFFFF), st.integers(0, 0xFFFF))
    def test_interleave_roundtrip(self, x, y):
        assert deinterleave(interleave(x, y)) == (x, y)

    def test_interleave_known_values(self):
        assert interleave(0, 0) == 0
        assert interleave(1, 0) == 1
        assert interleave(0, 1) == 2
        assert interleave(1, 1) == 3
        assert interleave(2, 3) == 0b1110

    def test_z_order_is_monotone_within_quadrants(self):
        # The four children of the root occupy disjoint, ordered intervals.
        max_depth = 4
        codes = [
            locational_code(bx, by, 1, max_depth) for bx, by in
            [(0, 0), (1, 0), (0, 1), (1, 1)]
        ]
        size = 4 ** (max_depth - 1)
        assert codes == [0, size, 2 * size, 3 * size]

    def test_leaf_intervals_partition_space(self):
        """Sibling blocks' code intervals are adjacent and disjoint."""
        parent = PMRBlock(0, 0, 0)
        children = parent.split()
        intervals = []
        for c in children:
            lo = c.code(3)
            intervals.append((lo, lo + 4 ** (3 - c.depth)))
        intervals.sort()
        assert intervals[0][0] == 0
        for (a_lo, a_hi), (b_lo, _) in zip(intervals, intervals[1:]):
            assert a_hi == b_lo
        assert intervals[-1][1] == 4**3


class TestBlocks:
    def test_rect(self):
        b = PMRBlock(1, 1, 0)
        assert b.rect(1024) == Rect(512, 0, 1024, 512)

    def test_split_and_merge(self):
        b = PMRBlock(0, 0, 0)
        kids = b.split()
        assert len(kids) == 4
        assert not b.is_leaf
        with pytest.raises(ValueError):
            b.split()
        b.merge()
        assert b.is_leaf
        with pytest.raises(ValueError):
            b.merge()

    def test_child_containing_half_open(self):
        b = PMRBlock(0, 0, 0)
        b.split()
        sw = b.child_containing(0, 0, 1024)
        assert (sw.bx, sw.by) == (0, 0)
        # The midpoint belongs to the NE child (half-open convention).
        ne = b.child_containing(512, 512, 1024)
        assert (ne.bx, ne.by) == (1, 1)
        se = b.child_containing(1023, 0, 1024)
        assert (se.bx, se.by) == (1, 0)

    def test_iter_leaves(self):
        b = PMRBlock(0, 0, 0)
        kids = b.split()
        kids[0].split()
        assert len(list(b.iter_leaves())) == 7


class TestConstruction:
    def test_bad_parameters(self):
        ctx = StorageContext.create()
        with pytest.raises(ValueError):
            PMRQuadtree(ctx, threshold=0)
        with pytest.raises(ValueError):
            PMRQuadtree(ctx, max_depth=0)
        with pytest.raises(ValueError):
            PMRQuadtree(ctx, world_size=1000)

    def test_empty(self):
        ctx = StorageContext.create()
        idx = PMRQuadtree(ctx, world_size=TEST_WORLD, max_depth=TEST_DEPTH)
        assert idx.entry_count() == 0
        assert idx.candidate_ids_at_point(Point(1, 1)) == []
        assert len(idx.leaf_blocks()) == 1
        idx.check_invariants()

    def test_no_split_below_threshold(self):
        segs = [Segment(10, 10, 20, 20), Segment(30, 30, 40, 40)]
        idx = build(segs, threshold=4)
        assert len(idx.leaf_blocks()) == 1
        assert idx.depth() == 0

    def test_split_on_exceeding_threshold(self):
        # 5 small disjoint segments in one quadrant force a split.
        segs = [Segment(10 + i * 4, 10, 12 + i * 4, 12) for i in range(5)]
        idx = build(segs, threshold=4)
        assert len(idx.leaf_blocks()) > 1
        idx.check_invariants()

    def test_split_once_rule(self):
        """One insertion splits an affected block at most once, so children
        may legally remain above the threshold."""
        # All segments cluster in a tiny area: after one split, a child
        # holds them all and exceeds the threshold until the next insert.
        segs = [Segment(10, 10 + i, 40, 12 + i) for i in range(6)]
        ctx = StorageContext.create()
        idx = PMRQuadtree(ctx, threshold=4, max_depth=TEST_DEPTH, world_size=TEST_WORLD)
        ids = ctx.load_segments(segs)
        for sid in ids[:5]:
            idx.insert(sid)
        assert idx.depth() == 1  # split exactly one level despite clustering
        idx.check_invariants()

    def test_threshold_depth_bound(self):
        """Bucket occupancy never exceeds threshold + depth (Section 3)."""
        rng = random.Random(5)
        segs = random_planar_segments(rng)
        idx = build(segs, threshold=2)
        idx.check_invariants()  # includes the bound

    def test_max_depth_blocks_never_split(self):
        segs = [Segment(0, i, 1023, i + 1) for i in range(8)]
        ctx = StorageContext.create()
        idx = PMRQuadtree(ctx, threshold=1, max_depth=2, world_size=TEST_WORLD)
        for sid in ctx.load_segments(segs):
            idx.insert(sid)
        assert idx.depth() <= 2
        idx.check_invariants()


class TestQueries:
    def test_point_candidates_superset_of_oracle(self):
        rng = random.Random(31)
        segs = random_planar_segments(rng)
        idx = build(segs)
        for s in segs:
            for p in (s.start, s.end):
                got = set(idx.candidate_ids_at_point(p))
                assert got >= set(oracle_at_point(segs, p))

    def test_point_query_examines_one_bucket(self):
        segs = lattice_map(n=8, pitch=110)
        idx = build(segs)
        before = idx.ctx.counters.bbox_comps
        idx.candidate_ids_at_point(Point(110, 110))
        assert idx.ctx.counters.bbox_comps - before == 1

    def test_window_candidates_superset_of_oracle(self):
        rng = random.Random(32)
        segs = random_planar_segments(rng)
        idx = build(segs)
        for _ in range(30):
            x, y = rng.randint(0, 900), rng.randint(0, 900)
            w = Rect(x, y, x + rng.randint(5, 150), y + rng.randint(5, 150))
            got = set(idx.candidate_ids_in_rect(w))
            assert got >= set(oracle_in_window(segs, w))

    def test_window_whole_world_returns_everything(self):
        rng = random.Random(33)
        segs = random_planar_segments(rng)
        idx = build(segs)
        got = set(idx.candidate_ids_in_rect(Rect(0, 0, TEST_WORLD, TEST_WORLD)))
        assert got == set(range(len(segs)))


class TestDeletion:
    def test_delete_removes_from_all_blocks(self):
        segs = lattice_map(n=8, pitch=110)
        ctx = StorageContext.create()
        idx = PMRQuadtree(ctx, threshold=4, max_depth=TEST_DEPTH, world_size=TEST_WORLD)
        ids = ctx.load_segments(segs)
        for sid in ids:
            idx.insert(sid)
        victim = ids[7]
        idx.delete(victim)
        got = idx.candidate_ids_in_rect(Rect(0, 0, TEST_WORLD, TEST_WORLD))
        assert victim not in got
        idx.check_invariants()

    def test_delete_merges_blocks(self):
        segs = [Segment(10 + i * 4, 10, 12 + i * 4, 12) for i in range(6)]
        ctx = StorageContext.create()
        idx = PMRQuadtree(ctx, threshold=4, max_depth=TEST_DEPTH, world_size=TEST_WORLD)
        ids = ctx.load_segments(segs)
        for sid in ids:
            idx.insert(sid)
        depth_before = idx.depth()
        assert depth_before >= 1
        for sid in ids[:4]:
            idx.delete(sid)
        # Occupancy dropped below the threshold: children merged away.
        assert idx.depth() < depth_before
        idx.check_invariants()

    def test_delete_everything_returns_to_single_block(self):
        segs = lattice_map(n=6, pitch=110)
        ctx = StorageContext.create()
        idx = PMRQuadtree(ctx, threshold=4, max_depth=TEST_DEPTH, world_size=TEST_WORLD)
        ids = ctx.load_segments(segs)
        for sid in ids:
            idx.insert(sid)
        rng = random.Random(34)
        rng.shuffle(ids)
        for sid in ids:
            idx.delete(sid)
        assert idx.entry_count() == 0
        assert len(idx.leaf_blocks()) == 1
        idx.check_invariants()

    def test_delete_missing_raises(self):
        ctx = StorageContext.create()
        idx = PMRQuadtree(ctx, world_size=TEST_WORLD, max_depth=TEST_DEPTH)
        ids = ctx.load_segments([Segment(0, 0, 5, 5), Segment(10, 10, 20, 20)])
        idx.insert(ids[0])
        with pytest.raises(KeyError):
            idx.delete(ids[1])


class TestThresholdBehaviour:
    def test_higher_threshold_less_storage(self):
        """Paper: storage decreases as the splitting threshold increases."""
        rng = random.Random(35)
        segs = random_planar_segments(rng, n_cells=6)
        low = build(segs, threshold=2)
        high = build(segs, threshold=16)
        assert high.entry_count() <= low.entry_count()
        assert len(high.leaf_blocks()) <= len(low.leaf_blocks())

    def test_bucket_occupancy_about_half_threshold(self):
        """Paper: average bucket occupancy is usually ~0.5 x threshold."""
        segs = lattice_map(n=12, pitch=75, jitter=10, seed=8)
        idx = build(segs, threshold=8)
        occ = idx.bucket_occupancy()
        assert 0.2 * 8 <= occ <= 1.1 * 8


class TestStoreBBoxesVariant:
    def test_filtering_reduces_segment_comps(self):
        """The Section 6 variant trades storage for fewer segment comps."""
        segs = lattice_map(n=10, pitch=90)
        plain = build(segs, store_bboxes=False)
        withbb = build(segs, store_bboxes=True)

        from repro.core.queries import segments_at_point

        p = Point(segs[17].x1, segs[17].y1)
        b0 = plain.ctx.counters.segment_comps
        r_plain = segments_at_point(plain, p)
        c_plain = plain.ctx.counters.segment_comps - b0

        b0 = withbb.ctx.counters.segment_comps
        r_bb = segments_at_point(withbb, p)
        c_bb = withbb.ctx.counters.segment_comps - b0

        assert set(r_plain) == set(r_bb)
        assert c_bb <= c_plain

    def test_variant_uses_more_bytes_per_entry(self):
        segs = lattice_map(n=10, pitch=90)
        plain = build(segs, store_bboxes=False)
        withbb = build(segs, store_bboxes=True)
        assert withbb.btree.leaf_capacity < plain.btree.leaf_capacity

    def test_variant_deletion_works(self):
        segs = lattice_map(n=6, pitch=110)
        ctx = StorageContext.create()
        idx = PMRQuadtree(
            ctx, max_depth=TEST_DEPTH, world_size=TEST_WORLD, store_bboxes=True
        )
        ids = ctx.load_segments(segs)
        for sid in ids:
            idx.insert(sid)
        idx.delete(ids[3])
        assert ids[3] not in idx.candidate_ids_in_rect(
            Rect(0, 0, TEST_WORLD, TEST_WORLD)
        )
        idx.check_invariants()


class TestPropertyBased:
    @settings(deadline=None, max_examples=25)
    @given(st.integers(0, 10_000), st.integers(1, 6))
    def test_random_maps(self, seed, threshold):
        rng = random.Random(seed)
        segs = random_planar_segments(rng, n_cells=5)
        idx = build(segs, threshold=threshold)
        idx.check_invariants()
        p = segs[rng.randrange(len(segs))].end
        got = set(idx.candidate_ids_at_point(p))
        assert got >= set(oracle_at_point(segs, p))

    @settings(deadline=None, max_examples=10)
    @given(st.integers(0, 10_000))
    def test_insert_delete_roundtrip(self, seed):
        rng = random.Random(seed)
        segs = random_planar_segments(rng, n_cells=5)
        ctx = StorageContext.create()
        idx = PMRQuadtree(ctx, threshold=3, max_depth=TEST_DEPTH, world_size=TEST_WORLD)
        ids = ctx.load_segments(segs)
        for sid in ids:
            idx.insert(sid)
        victims = ids[1::2]
        for sid in victims:
            idx.delete(sid)
        idx.check_invariants()
        got = set(idx.candidate_ids_in_rect(Rect(0, 0, TEST_WORLD, TEST_WORLD)))
        assert got == set(ids) - set(victims)
