"""The WAL record codec and the append-only log file."""

import os
import struct

import pytest

from repro.geometry import Segment
from repro.wal import (
    DeleteRecord,
    InsertRecord,
    WalError,
    WriteAheadLog,
    decode_record,
    encode_record,
    frame_record,
    scan_log,
)
from repro.wal.log import HEADER, MAGIC, ensure_contiguous
from repro.wal.records import FRAME


class TestRecordCodec:
    def test_insert_round_trip(self):
        rec = InsertRecord(7, 42, Segment(1.0, 2.0, 30.0, 40.0))
        assert decode_record(encode_record(rec)) == rec

    def test_delete_round_trip(self):
        rec = DeleteRecord(9, 17)
        assert decode_record(encode_record(rec)) == rec

    def test_float32_precision_is_the_codec_contract(self):
        # Coordinates survive exactly when they fit float32 -- the same
        # precision the segment-table page codec stores.
        rec = InsertRecord(1, 0, Segment(0.5, 1.25, 1024.0, 3.75))
        assert decode_record(encode_record(rec)).segment == rec.segment

    def test_unknown_op_rejected(self):
        payload = bytes([99]) + encode_record(DeleteRecord(1, 0))[1:]
        with pytest.raises(WalError):
            decode_record(payload)

    def test_truncated_payload_rejected(self):
        payload = encode_record(InsertRecord(1, 0, Segment(0, 0, 1, 1)))
        with pytest.raises(WalError):
            decode_record(payload[:-3])

    def test_frame_is_length_crc_payload(self):
        rec = DeleteRecord(3, 5)
        framed = frame_record(rec)
        length, _crc = FRAME.unpack_from(framed, 0)
        assert framed[FRAME.size :] == encode_record(rec)
        assert length == len(framed) - FRAME.size


class TestWriteAheadLog:
    def test_create_append_scan(self, tmp_path):
        path = tmp_path / "repro.wal"
        wal = WriteAheadLog.create(path)
        assert wal.log_insert(0, Segment(1, 1, 5, 5)) == 1
        assert wal.log_delete(0) == 2
        wal.close()
        scan = scan_log(path)
        assert scan.tail_error is None
        assert [r.lsn for r in scan.records] == [1, 2]
        assert isinstance(scan.records[0], InsertRecord)
        assert isinstance(scan.records[1], DeleteRecord)
        assert scan.last_lsn == 2

    def test_create_refuses_existing_file(self, tmp_path):
        path = tmp_path / "repro.wal"
        WriteAheadLog.create(path).close()
        with pytest.raises(FileExistsError):
            WriteAheadLog.create(path)

    def test_reopen_continues_lsns(self, tmp_path):
        path = tmp_path / "repro.wal"
        wal = WriteAheadLog.create(path, base_lsn=10)
        wal.log_delete(3)
        wal.close()
        wal = WriteAheadLog.open(path)
        assert wal.log_delete(4) == 12
        wal.close()
        assert [r.lsn for r in scan_log(path).records] == [11, 12]

    def test_bad_magic_raises(self, tmp_path):
        path = tmp_path / "repro.wal"
        path.write_bytes(b"NOTAWAL!" + b"\x00" * 8)
        with pytest.raises(WalError, match="magic"):
            scan_log(path)

    def test_truncated_header_raises(self, tmp_path):
        path = tmp_path / "repro.wal"
        path.write_bytes(HEADER.pack(MAGIC, 0)[: HEADER.size // 2])
        with pytest.raises(WalError, match="header"):
            scan_log(path)

    def test_torn_tail_scans_to_last_good_record(self, tmp_path):
        path = tmp_path / "repro.wal"
        wal = WriteAheadLog.create(path)
        wal.log_insert(0, Segment(1, 1, 5, 5))
        wal.log_delete(0)
        wal.close()
        size = os.path.getsize(path)
        with open(path, "r+b") as fh:
            fh.truncate(size - 4)  # cut into the final record
        scan = scan_log(path)
        assert scan.tail_error is not None
        assert [r.lsn for r in scan.records] == [1]
        assert scan.torn_bytes > 0

    def test_open_repairs_torn_tail(self, tmp_path):
        path = tmp_path / "repro.wal"
        wal = WriteAheadLog.create(path)
        wal.log_insert(0, Segment(1, 1, 5, 5))
        wal.log_delete(0)
        wal.close()
        with open(path, "r+b") as fh:
            fh.truncate(os.path.getsize(path) - 4)
        wal = WriteAheadLog.open(path)  # repair=True truncates
        assert wal.last_lsn == 1
        wal.close()
        assert scan_log(path).tail_error is None

    def test_open_without_repair_refuses_torn_tail(self, tmp_path):
        path = tmp_path / "repro.wal"
        wal = WriteAheadLog.create(path)
        wal.log_delete(2)
        wal.close()
        with open(path, "ab") as fh:
            fh.write(b"\x01")  # a stray torn byte
        with pytest.raises(WalError, match="torn"):
            WriteAheadLog.open(path, repair=False)

    def test_crc_mismatch_stops_scan(self, tmp_path):
        path = tmp_path / "repro.wal"
        wal = WriteAheadLog.create(path)
        wal.log_delete(1)
        wal.log_delete(1)
        wal.close()
        scan = scan_log(path)
        with open(path, "r+b") as fh:
            fh.seek(scan.offsets[1] + FRAME.size)  # second record's payload
            fh.write(b"\xff")
        damaged = scan_log(path)
        assert damaged.tail_error == "payload CRC mismatch"
        assert [r.lsn for r in damaged.records] == [1]

    def test_lsn_gap_detected(self, tmp_path):
        path = tmp_path / "repro.wal"
        with open(path, "wb") as fh:
            fh.write(HEADER.pack(MAGIC, 0))
            fh.write(frame_record(DeleteRecord(1, 0)))
            fh.write(frame_record(DeleteRecord(3, 0)))  # gap: 2 missing
        with pytest.raises(WalError, match="gap"):
            ensure_contiguous(scan_log(path), str(path))

    def test_implausible_length_is_a_torn_tail(self, tmp_path):
        path = tmp_path / "repro.wal"
        with open(path, "wb") as fh:
            fh.write(HEADER.pack(MAGIC, 0))
            fh.write(struct.pack("<II", 1 << 30, 0))
            fh.write(b"\x00" * 64)
        scan = scan_log(path)
        assert scan.records == []
        assert "implausible" in scan.tail_error


class TestGroupCommit:
    def test_every_commit_fsyncs_at_batch_one(self, tmp_path):
        wal = WriteAheadLog.create(tmp_path / "repro.wal", group_commit=1)
        for i in range(3):
            wal.log_delete(i)
            assert wal.commit() is True
        assert wal.fsyncs == 3
        wal.close()

    def test_batched_commits_defer_fsync(self, tmp_path):
        wal = WriteAheadLog.create(tmp_path / "repro.wal", group_commit=4)
        synced = []
        for _ in range(6):
            wal.log_delete(0)
            synced.append(wal.commit())
        assert wal.fsyncs == 1  # one batch of 4; 2 records still pending
        assert synced.count(True) == 1
        wal.sync()
        assert wal.fsyncs == 2
        wal.close()
        assert wal.fsyncs == 2  # close with nothing pending adds no sync

    def test_group_commit_must_be_positive(self, tmp_path):
        with pytest.raises(ValueError):
            WriteAheadLog.create(tmp_path / "repro.wal", group_commit=0)


class TestRotation:
    def test_rotate_empties_log_and_rebases(self, tmp_path):
        path = tmp_path / "repro.wal"
        wal = WriteAheadLog.create(path)
        wal.log_delete(0)
        wal.log_delete(0)
        wal.rotate(2)
        assert wal.base_lsn == 2
        assert wal.log_delete(0) == 3
        wal.close()
        scan = scan_log(path)
        assert scan.base_lsn == 2
        assert [r.lsn for r in scan.records] == [3]

    def test_stats_counters(self, tmp_path):
        wal = WriteAheadLog.create(tmp_path / "repro.wal", group_commit=2)
        wal.log_insert(0, Segment(0, 0, 1, 1))
        wal.commit()
        stats = wal.stats()
        assert stats["log_appends"] == 1
        assert stats["pending"] == 1  # below the batch size: not yet synced
        assert stats["last_lsn"] == 1
        wal.close()
