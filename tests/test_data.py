"""Tests for the map generator, counties, normalization, and TIGER I/O."""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.data import (
    COUNTY_NAMES,
    county_profile,
    generate_county,
    generate_map,
    normalize_segments,
    random_endpoint_queries,
    random_windows,
    read_type1,
    two_stage_points,
    uniform_points,
    write_type1,
)
from repro.data.generator import GeneratorSpec
from repro.data.normalize import bounding_square
from repro.data.tiger import TigerFormatError
from repro.geometry import Point, Segment
from repro.geometry.predicates import segments_intersect


def assert_planar(segments):
    """No two segments meet except at shared endpoints."""
    for i, a in enumerate(segments):
        for b in segments[i + 1 :]:
            if segments_intersect(a.start, a.end, b.start, b.end):
                shared = {a.start, a.end} & {b.start, b.end}
                assert shared, f"crossing without shared endpoint: {a} {b}"


class TestGenerator:
    def _small_spec(self, kind="urban", seed=1, **kw):
        defaults = dict(
            kind=kind,
            target_segments=300,
            seed=seed,
            world_size=4096,
            background=0.5,
        )
        defaults.update(kw)
        return GeneratorSpec(**defaults)

    def test_target_size_approximate(self):
        m = generate_map("t", self._small_spec())
        assert 0.8 * 300 <= len(m) <= 1.2 * 300

    def test_deterministic_by_seed(self):
        a = generate_map("t", self._small_spec(seed=9))
        b = generate_map("t", self._small_spec(seed=9))
        assert a.segments == b.segments

    def test_different_seeds_differ(self):
        a = generate_map("t", self._small_spec(seed=1))
        b = generate_map("t", self._small_spec(seed=2))
        assert a.segments != b.segments

    def test_coordinates_in_world(self):
        m = generate_map("t", self._small_spec())
        for s in m.segments:
            for v in s:
                assert 0 <= v < 4096
                assert v == int(v)

    def test_no_degenerate_segments(self):
        m = generate_map("t", self._small_spec())
        assert not any(s.is_degenerate() for s in m.segments)

    def test_planar_urban(self):
        m = generate_map("t", self._small_spec(kind="urban", diagonal_fraction=0.05))
        assert_planar(m.segments)

    def test_planar_rural_with_tandem(self):
        m = generate_map(
            "t",
            self._small_spec(
                kind="rural", background=0.05, walk_fraction=0.7,
                tandem_probability=0.8,
            ),
        )
        assert_planar(m.segments)

    def test_rejects_tiny_target(self):
        with pytest.raises(ValueError):
            generate_map("t", self._small_spec(target_segments=4))

    def test_no_duplicate_segments(self):
        m = generate_map("t", self._small_spec())
        keys = {tuple(sorted([(s.x1, s.y1), (s.x2, s.y2)])) for s in m.segments}
        assert len(keys) == len(m.segments)

    @settings(deadline=None, max_examples=10)
    @given(st.sampled_from(["urban", "suburban", "rural"]), st.integers(0, 100))
    def test_planarity_property(self, kind, seed):
        spec = GeneratorSpec(
            kind=kind,
            target_segments=150,
            seed=seed,
            world_size=2048,
            background=0.3,
            walk_fraction=0.4 if kind == "rural" else 0.0,
            tandem_probability=0.5 if kind == "rural" else 0.0,
            diagonal_fraction=0.05 if kind == "urban" else 0.0,
        )
        m = generate_map("t", spec)
        assert_planar(m.segments)


class TestMapData:
    def test_endpoint_index(self):
        m = generate_map(
            "t", GeneratorSpec(kind="urban", target_segments=100, seed=3,
                               world_size=2048, background=0.8)
        )
        idx = m.endpoint_index()
        for p, ids in idx.items():
            for sid in ids:
                assert m.segments[sid].has_endpoint(p)

    def test_max_degree_bounded(self):
        m = generate_map(
            "t", GeneratorSpec(kind="suburban", target_segments=200, seed=4,
                               world_size=2048, background=0.6)
        )
        assert m.max_degree() <= 4  # lattice without diagonals


class TestCounties:
    def test_all_counties_named(self):
        assert COUNTY_NAMES == sorted(
            ["anne_arundel", "baltimore", "cecil", "charles", "garrett", "washington"]
        )

    def test_profiles_exist(self):
        for name in COUNTY_NAMES:
            spec = county_profile(name, 1000)
            assert spec.target_segments == 1000

    def test_unknown_county(self):
        with pytest.raises(KeyError):
            county_profile("nowhere", 1000)

    def test_scale_validation(self):
        with pytest.raises(ValueError):
            generate_county("charles", scale=0)
        with pytest.raises(ValueError):
            generate_county("charles", scale=1.5)

    def test_generate_scaled(self):
        m = generate_county("cecil", scale=0.02)
        assert 0.7 * 938 <= len(m) <= 1.3 * 938
        assert m.name == "cecil"

    def test_urban_denser_center_than_rural(self):
        """The profiles must produce the paper's density skew."""
        urban = generate_county("baltimore", scale=0.05)
        rural = generate_county("charles", scale=0.05)

        def center_fraction(m):
            lo, hi = 16384 * 0.35, 16384 * 0.65
            inside = sum(
                1 for s in m.segments
                if lo <= (s.x1 + s.x2) / 2 <= hi and lo <= (s.y1 + s.y2) / 2 <= hi
            )
            return inside / len(m.segments)

        assert center_fraction(urban) > center_fraction(rural)


class TestNormalize:
    def test_bounding_square_is_square(self):
        segs = [Segment(0, 0, 10, 4), Segment(10, 4, 20, 6)]
        sq = bounding_square(segs)
        assert sq.width == sq.height == 20

    def test_empty_raises(self):
        with pytest.raises(ValueError):
            bounding_square([])
        with pytest.raises(ValueError):
            normalize_segments([])

    def test_zero_extent_raises(self):
        with pytest.raises(ValueError):
            normalize_segments([Segment(5, 5, 5, 5)])

    def test_output_in_grid(self):
        segs = [Segment(-50.1, 38.2, -50.0, 38.25), Segment(-50.0, 38.25, -49.9, 38.3)]
        out = normalize_segments(segs, world_size=16384)
        for s in out:
            for v in s:
                assert 0 <= v <= 16383
                assert v == int(v)

    def test_shared_endpoints_stay_shared(self):
        segs = [Segment(-50.1, 38.2, -50.0, 38.25), Segment(-50.0, 38.25, -49.9, 38.3)]
        out = normalize_segments(segs)
        assert out[0].end == out[1].start

    def test_degenerate_after_snap_dropped(self):
        segs = [
            Segment(0, 0, 1000, 1000),
            Segment(500, 500, 500.0000001, 500.0000001),  # collapses
        ]
        out = normalize_segments(segs)
        assert len(out) == 1


class TestTiger:
    def test_roundtrip(self, tmp_path):
        segs = [
            Segment(-76.51234, 38.912345, -76.498765, 38.920001),
            Segment(-76.498765, 38.920001, -76.48, 38.93),
        ]
        path = tmp_path / "test.rt1"
        n = write_type1(path, segs)
        assert n == 2
        got = read_type1(path)
        assert len(got) == 2
        for a, b in zip(segs, got):
            for va, vb in zip(a, b):
                assert vb == pytest.approx(va, abs=1e-6)

    def test_skips_other_record_types(self, tmp_path):
        segs = [Segment(-76.5, 38.9, -76.4, 38.8)]
        path = tmp_path / "mix.rt1"
        write_type1(path, segs)
        with open(path, "a") as f:
            f.write("2" + " " * 227 + "\n")  # a type-2 record
            f.write("\n")
        assert len(read_type1(path)) == 1

    def test_short_record_raises(self, tmp_path):
        path = tmp_path / "bad.rt1"
        path.write_text("1 too short\n")
        with pytest.raises(TigerFormatError):
            read_type1(path)

    def test_blank_coordinate_raises(self, tmp_path):
        rec = list("1" + " " * 227)
        path = tmp_path / "blank.rt1"
        path.write_text("".join(rec) + "\n")
        with pytest.raises(TigerFormatError):
            read_type1(path)

    def test_overflow_coordinate_raises(self, tmp_path):
        with pytest.raises(TigerFormatError):
            write_type1(tmp_path / "x.rt1", [Segment(-7000, 38, -76, 39)])

    def test_tiger_to_normalized_pipeline(self, tmp_path):
        segs = [
            Segment(-76.51, 38.91, -76.49, 38.92),
            Segment(-76.49, 38.92, -76.48, 38.93),
        ]
        path = tmp_path / "county.rt1"
        write_type1(path, segs)
        normalized = normalize_segments(read_type1(path))
        assert len(normalized) == 2
        assert normalized[0].end == normalized[1].start


class TestQueryPoints:
    def test_uniform_points_in_world(self):
        rng = random.Random(1)
        pts = uniform_points(50, rng, world_size=2048)
        assert len(pts) == 50
        assert all(0 <= p.x < 2048 and 0 <= p.y < 2048 for p in pts)

    def test_two_stage_points_inside_blocks(self):
        from tests.conftest import build_index, lattice_map

        idx = build_index("PMR", lattice_map(n=8, pitch=110))
        rng = random.Random(2)
        pts = two_stage_points(50, rng, idx)
        blocks = idx.leaf_blocks()
        for p in pts:
            assert any(b.rect(idx.world_size).contains_point(p) for b in blocks)

    def test_two_stage_correlates_with_density(self):
        """Dense areas must be sampled more often per unit area."""
        from tests.conftest import build_index
        from repro.geometry import Segment as S

        # Dense cluster in the SW corner, nothing elsewhere.
        segs = [S(8 + i, 8, 10 + i, 10) for i in range(0, 40, 2)]
        idx = build_index("PMR", segs)
        rng = random.Random(3)
        pts = two_stage_points(400, rng, idx)
        sw = sum(1 for p in pts if p.x < 512 and p.y < 512)
        # Uniform sampling would put ~25% in the SW quadrant of the world.
        assert sw / len(pts) > 0.4

    def test_endpoint_queries_are_real_endpoints(self):
        m = generate_county("cecil", scale=0.02)
        rng = random.Random(4)
        qs = random_endpoint_queries(30, rng, m)
        for p, sid in qs:
            assert m.segments[sid].has_endpoint(p)

    def test_windows_have_requested_area(self):
        rng = random.Random(5)
        wins = random_windows(20, rng, world_size=16384, area_fraction=0.0001)
        for w in wins:
            assert w.width == w.height
            assert abs(w.width - 164) <= 2  # sqrt(0.0001) * 16384 = 163.84
            assert 0 <= w.xmin and w.xmax < 16384
