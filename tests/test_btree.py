"""Unit and property tests for the paged B+-tree."""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.btree import BPlusTree
from repro.storage import BufferPool, DiskManager, MetricsCounters


def make_tree(leaf_capacity=4, internal_capacity=4, pool_pages=64):
    disk = DiskManager(page_size=1024)
    counters = MetricsCounters()
    pool = BufferPool(disk, capacity=pool_pages, counters=counters)
    tree = BPlusTree(pool, leaf_capacity, internal_capacity)
    return tree, counters


class TestBasics:
    def test_empty(self):
        tree, _ = make_tree()
        assert len(tree) == 0
        assert tree.height == 1
        assert list(tree.items()) == []
        assert not tree.contains(1, 1)

    def test_insert_and_contains(self):
        tree, _ = make_tree()
        tree.insert(5, 100)
        assert tree.contains(5, 100)
        assert not tree.contains(5, 101)
        assert len(tree) == 1

    def test_duplicate_pair_rejected(self):
        tree, _ = make_tree()
        tree.insert(5, 100)
        with pytest.raises(ValueError):
            tree.insert(5, 100)

    def test_duplicate_keys_allowed(self):
        tree, _ = make_tree()
        tree.insert(5, 100)
        tree.insert(5, 101)
        tree.insert(5, 99)
        assert tree.scan_eq(5) == [99, 100, 101]

    def test_items_sorted(self):
        tree, _ = make_tree()
        for k in [9, 1, 5, 3, 7, 2, 8, 4, 6, 0]:
            tree.insert(k, k * 10)
        assert list(tree.items()) == [(k, k * 10) for k in range(10)]

    def test_split_grows_height(self):
        tree, _ = make_tree(leaf_capacity=4)
        for k in range(5):
            tree.insert(k, 0)
        assert tree.height == 2
        tree.check_invariants()

    def test_delete_simple(self):
        tree, _ = make_tree()
        tree.insert(5, 100)
        tree.delete(5, 100)
        assert len(tree) == 0
        assert not tree.contains(5, 100)

    def test_delete_absent_raises(self):
        tree, _ = make_tree()
        tree.insert(5, 100)
        with pytest.raises(KeyError):
            tree.delete(5, 999)
        with pytest.raises(KeyError):
            tree.delete(6, 100)

    def test_capacity_validation(self):
        disk = DiskManager()
        pool = BufferPool(disk, capacity=4)
        with pytest.raises(ValueError):
            BPlusTree(pool, leaf_capacity=1)
        with pytest.raises(ValueError):
            BPlusTree(pool, leaf_capacity=4, internal_capacity=2)


class TestScans:
    def _populated(self):
        tree, _ = make_tree(leaf_capacity=4, internal_capacity=4)
        for k in range(0, 100, 2):  # even keys 0..98
            tree.insert(k, k)
        return tree

    def test_scan_range_inclusive(self):
        tree = self._populated()
        got = [k for k, _ in tree.scan_range(10, 20)]
        assert got == [10, 12, 14, 16, 18, 20]

    def test_scan_range_between_keys(self):
        tree = self._populated()
        got = [k for k, _ in tree.scan_range(11, 13)]
        assert got == [12]

    def test_scan_range_empty(self):
        tree = self._populated()
        assert list(tree.scan_range(11, 11)) == []

    def test_scan_range_everything(self):
        tree = self._populated()
        assert len(list(tree.scan_range(-1, 1000))) == 50

    def test_scan_crosses_leaves(self):
        tree = self._populated()
        assert [k for k, _ in tree.scan_range(0, 98)] == list(range(0, 100, 2))

    def test_has_and_count_in_range(self):
        tree = self._populated()
        assert tree.has_in_range(11, 13)
        assert not tree.has_in_range(11, 11)
        assert tree.count_in_range(0, 10) == 6

    def test_scan_eq_with_duplicates_across_leaf_boundary(self):
        tree, _ = make_tree(leaf_capacity=2, internal_capacity=3)
        for v in range(10):
            tree.insert(42, v)
        assert tree.scan_eq(42) == list(range(10))
        tree.check_invariants()


class TestBulkRandomized:
    def test_random_insert_delete_against_reference(self):
        rng = random.Random(1234)
        tree, _ = make_tree(leaf_capacity=6, internal_capacity=5, pool_pages=16)
        reference = set()
        for step in range(3000):
            if reference and rng.random() < 0.4:
                pair = rng.choice(sorted(reference))
                tree.delete(*pair)
                reference.discard(pair)
            else:
                pair = (rng.randint(0, 200), rng.randint(0, 10_000))
                if pair in reference:
                    continue
                tree.insert(*pair)
                reference.add(pair)
            if step % 500 == 0:
                tree.check_invariants()
        assert list(tree.items()) == sorted(reference)
        tree.check_invariants()

    def test_delete_everything(self):
        tree, _ = make_tree(leaf_capacity=4, internal_capacity=4)
        pairs = [(k % 17, k) for k in range(500)]
        for p in pairs:
            tree.insert(*p)
        rng = random.Random(7)
        rng.shuffle(pairs)
        for p in pairs:
            tree.delete(*p)
        assert len(tree) == 0
        assert list(tree.items()) == []
        assert tree.height == 1
        tree.check_invariants()

    def test_page_accounting_shrinks_after_deletes(self):
        tree, _ = make_tree(leaf_capacity=4, internal_capacity=4)
        for k in range(200):
            tree.insert(k, k)
        pages_full = tree.page_count
        for k in range(200):
            tree.delete(k, k)
        assert tree.page_count < pages_full
        assert tree.page_count == 1  # back to a single root leaf

    @settings(deadline=None, max_examples=30)
    @given(
        st.lists(
            st.tuples(st.integers(0, 50), st.integers(0, 50)),
            min_size=1,
            max_size=300,
        ),
        st.integers(2, 8),
        st.integers(3, 8),
    )
    def test_property_matches_sorted_reference(self, ops, leaf_cap, int_cap):
        tree, _ = make_tree(leaf_capacity=leaf_cap, internal_capacity=int_cap)
        reference = set()
        for pair in ops:
            if pair in reference:
                tree.delete(*pair)
                reference.discard(pair)
            else:
                tree.insert(*pair)
                reference.add(pair)
        assert list(tree.items()) == sorted(reference)
        tree.check_invariants()

    @settings(deadline=None, max_examples=20)
    @given(
        st.lists(st.integers(0, 1000), min_size=1, max_size=300, unique=True),
        st.integers(0, 1000),
        st.integers(0, 1000),
    )
    def test_property_range_scan_matches_filter(self, keys, a, b):
        lo, hi = min(a, b), max(a, b)
        tree, _ = make_tree(leaf_capacity=5, internal_capacity=4)
        for k in keys:
            tree.insert(k, k)
        got = [k for k, _ in tree.scan_range(lo, hi)]
        assert got == sorted(k for k in keys if lo <= k <= hi)


class TestDiskBehaviour:
    def test_cold_descent_charges_height_reads(self):
        tree, counters = make_tree(leaf_capacity=4, internal_capacity=4, pool_pages=64)
        for k in range(100):
            tree.insert(k, k)
        assert tree.height >= 3
        tree.pool.clear()
        before = counters.disk_reads
        tree.contains(57, 57)
        assert counters.disk_reads - before == tree.height

    def test_warm_descent_charges_nothing(self):
        tree, counters = make_tree(pool_pages=64)
        for k in range(100):
            tree.insert(k, k)
        tree.contains(57, 57)
        before = counters.disk_reads
        tree.contains(57, 57)
        assert counters.disk_reads == before

    def test_bytes_used_counts_whole_pages(self):
        tree, _ = make_tree()
        assert tree.bytes_used == tree.page_count * 1024
