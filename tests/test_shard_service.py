"""End-to-end tests for the sharded map service.

Every structure the paper compares (R*, R+, PMR) gets its own shard
set, served in-process over loopback TCP behind a scatter-gather
router, and every routed answer is checked probe-identical to an
unsharded oracle over the same segments -- including a segment crafted
to straddle a shard boundary, which cross-shard dedup must report
exactly once.
"""

import random

import pytest

from repro.data.counties import generate_county
from repro.geometry import Segment
from repro.harness.experiment import STRUCTURE_FACTORIES
from repro.metric_names import COUNTER_FIELDS
from repro.obs.metrics import MetricsRegistry
from repro.service.engine import QueryEngine
from repro.service.loadgen import bench_serve, parse_address
from repro.service.server import send_request
from repro.shard import (
    LocalShardSet,
    ShardMap,
    ShardRouter,
    init_shard_set,
    segment_mbr,
)
from repro.storage.context import StorageContext

# The sharded suite is the most thread-dense path in the repo (router
# scatter pool + per-shard servers + WAL commits); run all of it under
# the runtime lock-order sanitizer so any ordering cycle fails the test
# that first exhibits it, deadlock or not.
pytestmark = pytest.mark.usefixtures("lock_sanitizer")

STRUCTURES = ("R*", "R+", "PMR")
N_SHARDS = 3
SCALE = 0.01
PAGE_SIZE = 2048


class RoutedService:
    """One sharded service plus its unsharded oracle."""

    def __init__(self, root, structure):
        self.map_data = generate_county("cecil", scale=SCALE)
        self.root = root
        self.smap = init_shard_set(
            root,
            structure,
            map_data=self.map_data,
            n_shards=N_SHARDS,
            page_size=PAGE_SIZE,
        )
        ctx = StorageContext.create(page_size=PAGE_SIZE, pool_pages=16)
        index = STRUCTURE_FACTORIES[structure](ctx)
        for seg_id in ctx.load_segments(self.map_data.segments):
            index.insert(seg_id)
        self.oracle = QueryEngine(index, registry=MetricsRegistry())
        self.shards = LocalShardSet(root)
        self.shards.__enter__()
        self.router = ShardRouter(root)
        self.router.start_background()
        self.addr = self.router.address

    def request(self, payload):
        return send_request(self.addr, payload)

    def close(self):
        self.router.close()
        self.shards.__exit__(None, None, None)


@pytest.fixture(scope="module", params=STRUCTURES)
def service(request, tmp_path_factory):
    root = tmp_path_factory.mktemp(f"shards-{request.param.replace('*', 'star')}")
    svc = RoutedService(str(root), request.param)
    yield svc
    svc.close()


class TestRoutedReadsMatchOracle:
    def test_windows_probe_identical(self, service):
        rng = random.Random(11)
        world = service.map_data.world_size
        for _ in range(12):
            x, y = rng.uniform(0, world), rng.uniform(0, world)
            span = rng.uniform(10, world / 3)
            resp = service.request(
                {"op": "window", "x1": x, "y1": y, "x2": x + span, "y2": y + span}
            )
            assert resp["ok"], resp
            assert resp["result"] == sorted(
                service.oracle.window(x, y, x + span, y + span)
            )

    def test_points_probe_identical(self, service):
        rng = random.Random(12)
        for seg in rng.sample(service.map_data.segments, 10):
            resp = service.request({"op": "point", "x": seg.x1, "y": seg.y1})
            assert resp["ok"], resp
            assert resp["result"] == sorted(service.oracle.point(seg.x1, seg.y1))

    def test_nearest_probe_identical(self, service):
        rng = random.Random(13)
        world = service.map_data.world_size
        for _ in range(8):
            x, y = rng.uniform(0, world), rng.uniform(0, world)
            k = rng.choice([1, 3, 8])
            resp = service.request({"op": "nearest", "x": x, "y": y, "k": k})
            assert resp["ok"], resp
            got = [seg_id for seg_id, _ in resp["result"]]
            want = [seg_id for seg_id, _ in service.oracle.nearest(x, y, k=k)]
            assert got == want

    def test_results_have_no_duplicates(self, service):
        world = service.map_data.world_size
        resp = service.request(
            {"op": "window", "x1": 0, "y1": 0, "x2": world, "y2": world}
        )
        assert resp["ok"], resp
        assert len(resp["result"]) == len(set(resp["result"]))


class TestBoundaryStraddlingSegment:
    def test_straddler_appears_exactly_once(self, service):
        """A segment indexed by several shards must be reported once.

        The segment is crafted to span two shard extents, inserted
        through the router (so every shard's table gets it and every
        covering shard indexes it), then probed by window and point --
        each must agree with the unsharded oracle, which structurally
        cannot duplicate.
        """
        smap = service.smap
        extents = [smap.extent(s) for s in smap.shards]
        e0, e1 = extents[0], extents[-1]
        seg = Segment(
            (e0.xmin + e0.xmax) / 2,
            (e0.ymin + e0.ymax) / 2,
            (e1.xmin + e1.xmax) / 2,
            (e1.ymin + e1.ymax) / 2,
        )
        covering = [
            s for s in smap.shards if smap.covers(s, segment_mbr(seg))
        ]
        assert len(covering) >= 2, "crafted segment must straddle shards"

        resp = service.request(
            {"op": "insert", "x1": seg.x1, "y1": seg.y1, "x2": seg.x2, "y2": seg.y2}
        )
        assert resp["ok"], resp
        seg_id = resp["result"]
        assert seg_id == service.oracle.insert_segment(seg)
        try:
            rect = segment_mbr(seg)
            resp = service.request(
                {
                    "op": "window",
                    "x1": rect.xmin - 1,
                    "y1": rect.ymin - 1,
                    "x2": rect.xmax + 1,
                    "y2": rect.ymax + 1,
                }
            )
            assert resp["ok"], resp
            assert resp["result"].count(seg_id) == 1
            assert resp["result"] == sorted(
                service.oracle.window(
                    rect.xmin - 1, rect.ymin - 1, rect.xmax + 1, rect.ymax + 1
                )
            )
            resp = service.request({"op": "point", "x": seg.x1, "y": seg.y1})
            assert resp["ok"], resp
            assert resp["result"].count(seg_id) == 1
            assert resp["result"] == sorted(
                service.oracle.point(seg.x1, seg.y1)
            )
        finally:
            resp = service.request({"op": "delete", "seg_id": seg_id})
            assert resp["ok"] and resp["result"] is True, resp
            service.oracle.delete(seg_id)


class TestMutationsThroughRouter:
    def test_insert_delete_parity(self, service):
        resp = service.request(
            {"op": "insert", "x1": 5.0, "y1": 5.0, "x2": 9.0, "y2": 9.0}
        )
        assert resp["ok"], resp
        seg_id = resp["result"]
        assert seg_id == service.oracle.insert_segment(
            Segment(5.0, 5.0, 9.0, 9.0)
        )
        resp = service.request({"op": "delete", "seg_id": seg_id})
        assert resp["ok"] and resp["result"] is True
        service.oracle.delete(seg_id)
        # A second delete is an error on every shard, merged to one.
        resp = service.request({"op": "delete", "seg_id": seg_id})
        assert not resp["ok"]
        assert resp["error"]["code"] == "unknown_seg"

    def test_batch_merges_positionally(self, service):
        seg = service.map_data.segments[0]
        resp = service.request(
            {
                "op": "batch",
                "requests": [
                    {"op": "point", "x": seg.x1, "y": seg.y1},
                    {"op": "window", "x1": 0, "y1": 0, "x2": 500, "y2": 500},
                ],
            }
        )
        assert resp["ok"], resp
        results = resp["result"]["results"]
        assert results[0] == sorted(service.oracle.point(seg.x1, seg.y1))
        assert results[1] == sorted(service.oracle.window(0, 0, 500, 500))


class TestBatchClipping:
    def _shard_totals(self, service):
        resp = service.request({"op": "stats"})
        assert resp["ok"], resp
        return {
            sid: dict(entry["totals"])
            for sid, entry in resp["result"]["shards"].items()
        }

    def test_read_only_batch_clips_to_touched_shards(self, service):
        # A point query's geometry touches one (occasionally two) of the
        # three shard regions; a read-only batch must route each member
        # only there, leaving the other shards' counters untouched.
        seg = service.map_data.segments[0]
        before = self._shard_totals(service)
        resp = service.request(
            {
                "op": "batch",
                "use_cache": False,
                "requests": [
                    {"op": "point", "x": seg.x1, "y": seg.y1},
                    {"op": "point", "x": seg.x1, "y": seg.y1},
                ],
            }
        )
        assert resp["ok"], resp
        expected = sorted(service.oracle.point(seg.x1, seg.y1))
        assert resp["result"]["results"] == [expected, expected]
        after = self._shard_totals(service)
        touched = [sid for sid in after if after[sid] != before[sid]]
        assert 1 <= len(touched) < len(after), touched

    def test_mutating_batch_broadcasts(self, service):
        # Any mutation in the batch forces a whole-batch broadcast so
        # the replicated segment tables stay identical on every shard.
        before = self._shard_totals(service)
        resp = service.request(
            {
                "op": "batch",
                "requests": [
                    {"op": "insert", "x1": 3.0, "y1": 3.0, "x2": 6.0, "y2": 6.0}
                ],
            }
        )
        assert resp["ok"], resp
        seg_id = resp["result"]["results"][0]
        assert seg_id == service.oracle.insert_segment(
            Segment(3.0, 3.0, 6.0, 6.0)
        )
        try:
            after = self._shard_totals(service)
            touched = [sid for sid in after if after[sid] != before[sid]]
            assert sorted(touched) == sorted(after), touched
        finally:
            resp = service.request({"op": "delete", "seg_id": seg_id})
            assert resp["ok"] and resp["result"] is True, resp
            service.oracle.delete(seg_id)


class TestCounterMerge:
    def test_router_totals_are_shard_sums(self, service):
        # Push some traffic first so the counters are warm.
        world = service.map_data.world_size
        for _ in range(3):
            service.request(
                {"op": "window", "x1": 0, "y1": 0, "x2": world / 2, "y2": world / 2}
            )
        resp = service.request({"op": "stats"})
        assert resp["ok"], resp
        stats = resp["result"]
        assert stats["counters_consistent"] is True
        for name in COUNTER_FIELDS:
            assert stats["totals"][name] == sum(
                stats["shards"][sid]["totals"][name]
                for sid in stats["shards"]
            )

    def test_explain_merge_stays_exact(self, service):
        world = service.map_data.world_size
        resp = service.request(
            {
                "op": "explain",
                "query": {
                    "op": "window",
                    "x1": 0,
                    "y1": 0,
                    "x2": world / 4,
                    "y2": world / 4,
                },
            }
        )
        assert resp["ok"], resp
        assert resp["result"]["exact"] is True


class TestDegradationAndHealing:
    def test_down_shard_reports_structured_partial(self, service):
        world = service.map_data.world_size
        down = sorted(service.router.clients)[0]
        service.shards.stop(down)
        try:
            resp = service.request(
                {"op": "window", "x1": 0, "y1": 0, "x2": world, "y2": world}
            )
            assert not resp["ok"], resp
            assert resp["error"]["code"] == "shard_unavailable"
            assert resp["error"]["shard"] == down
            assert "partial" in resp
            assert resp["partial"]["shards"]
        finally:
            service.shards.start(down)
        # Restart heals without touching the router (it re-reads the
        # worker's published address on the next request).
        resp = service.request(
            {"op": "window", "x1": 0, "y1": 0, "x2": world, "y2": world}
        )
        assert resp["ok"], resp
        assert resp["result"] == sorted(service.oracle.window(0, 0, world, world))


class TestLoadgenConnect:
    def test_parse_address(self):
        assert parse_address("127.0.0.1:8765") == ("127.0.0.1", 8765)
        with pytest.raises(ValueError):
            parse_address("no-port")
        with pytest.raises(ValueError):
            parse_address("host:NaN")

    def test_round_robin_across_addresses(self, service):
        # Round-robin the read-only workload across the router and one
        # worker address; every request must succeed.
        worker_addr = next(iter(service.shards.servers.values())).address
        addresses = [
            service.addr,
            (worker_addr[0], worker_addr[1]),
        ]
        report = bench_serve(
            threads=2,
            requests=24,
            connect=addresses,
            world_size=service.map_data.world_size,
        )
        assert report.errors == 0
        assert report.requests == 24
        assert report.source.startswith("connect:")

    def test_connect_reports_routed_structure(self, service):
        report = bench_serve(
            threads=1,
            requests=6,
            connect=[service.addr],
            world_size=service.map_data.world_size,
        )
        assert report.errors == 0
        assert report.structure == f"routed[{N_SHARDS}]"


class TestShardSetChecks:
    def test_routed_check_is_clean(self, service):
        resp = service.request({"op": "check"})
        assert resp["ok"], resp
        assert resp["result"]["clean"] is True

    def test_health_lists_every_shard(self, service):
        resp = service.request({"op": "health"})
        assert resp["ok"], resp
        assert sorted(resp["result"]["shards"]) == sorted(
            s.shard_id for s in service.smap.shards
        )

    def test_reload_is_a_noop_at_same_epoch(self, service):
        resp = service.request({"op": "reload"})
        assert resp["ok"], resp
        assert resp["result"]["epoch"] == ShardMap.load(service.root).epoch
