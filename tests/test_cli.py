"""Tests for the ``python -m repro`` command-line driver."""

import pytest

from repro.__main__ import main


def run_cli(capsys, *args):
    rc = main(list(args))
    out = capsys.readouterr().out
    return rc, out


SMALL = ("--scale", "0.01", "--queries", "5")


class TestCLI:
    def test_table1(self, capsys):
        rc, out = run_cli(capsys, "table1", *SMALL)
        assert rc == 0
        assert "map name" in out and "charles" in out

    def test_table2(self, capsys):
        rc, out = run_cli(capsys, "table2", "--county", "cecil", *SMALL)
        assert rc == 0
        assert "cecil county" in out
        assert "Point1" in out and "Range" in out

    def test_figure6(self, capsys):
        rc, out = run_cli(capsys, "figure6", "--county", "cecil", *SMALL)
        assert rc == 0
        assert "page size" in out and "PMR" in out

    @pytest.mark.parametrize("figure", ["figure7", "figure8", "figure9"])
    def test_figures(self, capsys, figure):
        rc, out = run_cli(capsys, figure, *SMALL)
        assert rc == 0
        assert "min" in out and "avg" in out and "max" in out

    def test_occupancy(self, capsys):
        rc, out = run_cli(capsys, "occupancy", "--county", "cecil", *SMALL)
        assert rc == 0
        assert "threshold" in out

    def test_generate(self, capsys):
        rc, out = run_cli(capsys, "generate", "--county", "garrett", *SMALL)
        assert rc == 0
        assert "garrett" in out
        assert "degrees" in out
        assert "noded planar map: True" in out

    def test_unknown_command_exits(self):
        with pytest.raises(SystemExit):
            main(["not-a-command"])

    def test_no_command_exits(self):
        with pytest.raises(SystemExit):
            main([])
