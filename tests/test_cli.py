"""Tests for the ``python -m repro`` command-line driver."""

import pytest

from repro.__main__ import main


def run_cli(capsys, *args):
    rc = main(list(args))
    out = capsys.readouterr().out
    return rc, out


SMALL = ("--scale", "0.01", "--queries", "5")


class TestCLI:
    def test_table1(self, capsys):
        rc, out = run_cli(capsys, "table1", *SMALL)
        assert rc == 0
        assert "map name" in out and "charles" in out

    def test_table2(self, capsys):
        rc, out = run_cli(capsys, "table2", "--county", "cecil", *SMALL)
        assert rc == 0
        assert "cecil county" in out
        assert "Point1" in out and "Range" in out

    def test_figure6(self, capsys):
        rc, out = run_cli(capsys, "figure6", "--county", "cecil", *SMALL)
        assert rc == 0
        assert "page size" in out and "PMR" in out

    @pytest.mark.parametrize("figure", ["figure7", "figure8", "figure9"])
    def test_figures(self, capsys, figure):
        rc, out = run_cli(capsys, figure, *SMALL)
        assert rc == 0
        assert "min" in out and "avg" in out and "max" in out

    def test_occupancy(self, capsys):
        rc, out = run_cli(capsys, "occupancy", "--county", "cecil", *SMALL)
        assert rc == 0
        assert "threshold" in out

    def test_generate(self, capsys):
        rc, out = run_cli(capsys, "generate", "--county", "garrett", *SMALL)
        assert rc == 0
        assert "garrett" in out
        assert "degrees" in out
        assert "noded planar map: True" in out

    def test_unknown_command_exits(self):
        with pytest.raises(SystemExit):
            main(["not-a-command"])

    def test_no_command_exits(self):
        with pytest.raises(SystemExit):
            main([])


class TestShardCLI:
    def _init(self, capsys, tmp_path, n_shards="3"):
        root = str(tmp_path / "shards")
        rc, out = run_cli(
            capsys,
            "shard-init",
            "--root",
            root,
            "--county",
            "cecil",
            "--scale",
            "0.01",
            "--structure",
            "PMR",
            "--n-shards",
            n_shards,
            "--page-size",
            "2048",
        )
        assert rc == 0
        return root, out

    def test_shard_init_reports_ranges(self, capsys, tmp_path):
        root, out = self._init(capsys, tmp_path)
        assert "initialised 3-shard PMR set" in out
        assert "s0: cells [0," in out

    def test_check_shards_clean(self, capsys, tmp_path):
        root, _ = self._init(capsys, tmp_path)
        rc, out = run_cli(capsys, "check", "--shards", root)
        assert rc == 0
        assert "clean: 0 findings" in out

    def test_check_shards_missing_dir(self, capsys, tmp_path):
        rc = main(["check", "--shards", str(tmp_path / "nope")])
        assert rc == 2

    def test_shard_split_bumps_epoch(self, capsys, tmp_path):
        root, _ = self._init(capsys, tmp_path)
        rc, out = run_cli(capsys, "shard-split", "--root", root, "--shard", "s1")
        assert rc == 0
        assert "split s1 -> s1a, s1b" in out
        assert "epoch 2" in out
        rc, out = run_cli(capsys, "check", "--shards", root)
        assert rc == 0

    def test_shard_catchup_noop(self, capsys, tmp_path):
        root, _ = self._init(capsys, tmp_path)
        rc, out = run_cli(capsys, "shard-catchup", "--root", root, "--shard", "s0")
        assert rc == 0
        assert "caught up s0" in out and "0 record(s)" in out

    def test_shard_split_unknown_shard_exits(self, capsys, tmp_path):
        root, _ = self._init(capsys, tmp_path)
        with pytest.raises(SystemExit):
            main(["shard-split", "--root", root, "--shard", "zz"])
