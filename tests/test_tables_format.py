"""Tests for the table/figure text renderers."""

import pytest

from repro.harness.normalized import NormalizedRange
from repro.harness.tables import format_normalized, format_normalized_bars


def ranges():
    return [
        NormalizedRange("R+", "Point1", "disk_accesses", 1.06, 1.14, 1.20),
        NormalizedRange("R*", "Point1", "disk_accesses", 1.06, 1.13, 1.23),
        NormalizedRange("R+", "Range", "disk_accesses", 0.90, 0.99, 1.07),
        NormalizedRange("R*", "Range", "disk_accesses", 0.80, 0.83, 0.89),
    ]


class TestFormatNormalized:
    def test_contains_rows(self):
        text = format_normalized(ranges(), "Figure 8")
        assert "Figure 8" in text
        assert "Point1" in text and "Range" in text
        assert "1.14" in text

    def test_baseline_mentioned(self):
        text = format_normalized(ranges(), "t", baseline="R*")
        assert "R*" in text.splitlines()[1]


class TestFormatNormalizedBars:
    def test_bar_geometry(self):
        text = format_normalized_bars(ranges(), "Figure 8")
        lines = [l for l in text.splitlines()[2:] if "=" in l or "*" in l]
        assert len(lines) == 4
        for line in lines:
            assert "*" in line  # average marker present

    def test_averages_printed(self):
        text = format_normalized_bars(ranges(), "t")
        assert " 1.14" in text and " 0.83" in text

    def test_wider_range_longer_bar(self):
        text = format_normalized_bars(ranges(), "t", width=60)
        by_label = {}
        for line in text.splitlines():
            if "Point1" in line and "R*" in line:
                by_label["wide"] = line.count("=")
            if "Range" in line and "R*" in line:
                by_label["narrow"] = line.count("=")
        assert by_label["wide"] >= by_label["narrow"]

    def test_empty_input(self):
        assert "(no data)" in format_normalized_bars([], "t")

    def test_baseline_tick_present(self):
        text = format_normalized_bars(ranges(), "t")
        assert "|" in text
