"""Tests for the spatial intersection joins (map overlay)."""

import random

import pytest

from repro.core import GuttmanRTree, PMRQuadtree, RStarTree
from repro.core.queries import brute_force_join, quadtree_join, rtree_join
from repro.geometry import Segment
from repro.storage import StorageContext

from tests.conftest import TEST_DEPTH, TEST_WORLD


def build_rtree(segments, cls=RStarTree):
    ctx = StorageContext.create()
    idx = cls(ctx)
    for sid in ctx.load_segments(segments):
        idx.insert(sid)
    return idx


def build_pmr(segments, threshold=4):
    ctx = StorageContext.create()
    idx = PMRQuadtree(ctx, threshold=threshold, max_depth=TEST_DEPTH, world_size=TEST_WORLD)
    for sid in ctx.load_segments(segments):
        idx.insert(sid)
    return idx


def two_layers(seed, n=10):
    """Roads (lattice verticals) and streams (meandering horizontals)."""
    rng = random.Random(seed)
    roads = [
        Segment(x, rng.randint(0, 200), x, rng.randint(700, 1000))
        for x in range(50, 1000, 1000 // n)
    ]
    streams = []
    y = 100
    x = 0
    while x < 950:
        nx = x + rng.randint(40, 120)
        ny = max(10, min(1000, y + rng.randint(-80, 80)))
        streams.append(Segment(x, y, min(nx, 1000), ny))
        x, y = min(nx, 1000), ny
    return roads, streams


class TestRTreeJoin:
    def test_matches_brute_force(self):
        roads, streams = two_layers(1)
        a = build_rtree(roads)
        b = build_rtree(streams)
        assert rtree_join(a, b) == brute_force_join(roads, streams)

    def test_guttman_variant(self):
        roads, streams = two_layers(2)
        a = build_rtree(roads, cls=GuttmanRTree)
        b = build_rtree(streams, cls=GuttmanRTree)
        assert rtree_join(a, b) == brute_force_join(roads, streams)

    def test_disjoint_layers_empty(self):
        a = build_rtree([Segment(0, 0, 100, 0)])
        b = build_rtree([Segment(0, 500, 100, 500)])
        assert rtree_join(a, b) == set()

    def test_different_heights(self):
        roads, streams = two_layers(3)
        a = build_rtree(roads)  # small tree
        big = [
            Segment(i, j, i + 3, j + 3)
            for i in range(0, 1000, 25)
            for j in range(0, 1000, 50)
        ]
        b = build_rtree(streams + big)
        expected = brute_force_join(roads, streams + big)
        assert rtree_join(a, b) == expected

    def test_join_charges_both_sides(self):
        roads, streams = two_layers(4)
        a = build_rtree(roads)
        b = build_rtree(streams)
        a0 = a.ctx.counters.bbox_comps
        b0 = b.ctx.counters.bbox_comps
        rtree_join(a, b)
        assert a.ctx.counters.bbox_comps > a0
        assert b.ctx.counters.bbox_comps > b0


class TestQuadtreeJoin:
    def test_matches_brute_force(self):
        roads, streams = two_layers(5)
        a = build_pmr(roads)
        b = build_pmr(streams)
        assert quadtree_join(a, b) == brute_force_join(roads, streams)

    def test_different_thresholds_still_align(self):
        """Different thresholds give different decompositions of the same
        aligned world -- ancestor/descendant blocks, never partial overlap."""
        roads, streams = two_layers(6)
        a = build_pmr(roads, threshold=2)
        b = build_pmr(streams, threshold=8)
        assert quadtree_join(a, b) == brute_force_join(roads, streams)

    def test_mismatched_worlds_rejected(self):
        ctx1 = StorageContext.create()
        a = PMRQuadtree(ctx1, world_size=1024, max_depth=10)
        ctx2 = StorageContext.create()
        b = PMRQuadtree(ctx2, world_size=2048, max_depth=10)
        with pytest.raises(ValueError):
            quadtree_join(a, b)

    def test_empty_sides(self):
        roads, _ = two_layers(7)
        a = build_pmr(roads)
        ctx = StorageContext.create()
        b = PMRQuadtree(ctx, world_size=TEST_WORLD, max_depth=TEST_DEPTH)
        assert quadtree_join(a, b) == set()

    def test_agrees_with_rtree_join(self):
        roads, streams = two_layers(8)
        q = quadtree_join(build_pmr(roads), build_pmr(streams))
        r = rtree_join(build_rtree(roads), build_rtree(streams))
        assert q == r

    def test_alignment_needs_no_bbox_tests_above_buckets(self):
        """The Section 7 claim in miniature: the aligned walk charges
        bucket reads only, far fewer than the R-tree join's rectangle
        pair tests."""
        roads, streams = two_layers(9)
        qa, qb = build_pmr(roads), build_pmr(streams)
        ra, rb = build_rtree(roads), build_rtree(streams)

        qa0 = qa.ctx.counters.bbox_comps + qb.ctx.counters.bbox_comps
        quadtree_join(qa, qb)
        q_cost = (qa.ctx.counters.bbox_comps + qb.ctx.counters.bbox_comps) - qa0

        ra0 = ra.ctx.counters.bbox_comps + rb.ctx.counters.bbox_comps
        rtree_join(ra, rb)
        r_cost = (ra.ctx.counters.bbox_comps + rb.ctx.counters.bbox_comps) - ra0

        assert q_cost < r_cost
