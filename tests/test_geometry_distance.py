"""Tests for squared-distance kernels."""

import math

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.geometry import (
    Point,
    Rect,
    point_point_distance2,
    point_rect_distance2,
    point_segment_distance2,
    rect_rect_distance2,
)

coords = st.integers(min_value=-100, max_value=100)
points = st.builds(Point, coords, coords)


def rects():
    return st.builds(
        lambda x1, y1, x2, y2: Rect(min(x1, x2), min(y1, y2), max(x1, x2), max(y1, y2)),
        coords,
        coords,
        coords,
        coords,
    )


class TestPointSegment:
    def test_projection_interior(self):
        assert point_segment_distance2(Point(5, 3), Point(0, 0), Point(10, 0)) == 9

    def test_nearest_is_endpoint(self):
        assert point_segment_distance2(Point(-3, 4), Point(0, 0), Point(10, 0)) == 25

    def test_point_on_segment(self):
        assert point_segment_distance2(Point(5, 0), Point(0, 0), Point(10, 0)) == 0

    def test_degenerate_segment(self):
        assert point_segment_distance2(Point(3, 4), Point(0, 0), Point(0, 0)) == 25

    @given(points, points, points)
    def test_bounded_by_endpoint_distances(self, p, a, b):
        d = point_segment_distance2(p, a, b)
        assert d <= point_point_distance2(p, a) + 1e-9
        assert d <= point_point_distance2(p, b) + 1e-9

    @given(points, points, points)
    def test_symmetric_in_endpoints(self, p, a, b):
        assert point_segment_distance2(p, a, b) == pytest.approx(
            point_segment_distance2(p, b, a)
        )

    @given(points, points, points)
    def test_matches_dense_sampling(self, p, a, b):
        d = point_segment_distance2(p, a, b)
        best = min(
            (a.x + t / 200 * (b.x - a.x) - p.x) ** 2
            + (a.y + t / 200 * (b.y - a.y) - p.y) ** 2
            for t in range(201)
        )
        assert d <= best + 1e-9
        # The sampled minimum overshoots by O(segment_length / 200)^2.
        assert math.isclose(d, best, rel_tol=5e-2, abs_tol=0.5)


class TestPointRect:
    def test_inside_is_zero(self):
        assert point_rect_distance2(Point(5, 5), Rect(0, 0, 10, 10)) == 0

    def test_boundary_is_zero(self):
        assert point_rect_distance2(Point(0, 5), Rect(0, 0, 10, 10)) == 0

    def test_beside(self):
        assert point_rect_distance2(Point(13, 5), Rect(0, 0, 10, 10)) == 9

    def test_diagonal(self):
        assert point_rect_distance2(Point(13, 14), Rect(0, 0, 10, 10)) == 25

    @given(points, rects())
    def test_zero_iff_contained(self, p, r):
        assert (point_rect_distance2(p, r) == 0) == r.contains_point(p)

    @given(points, rects())
    def test_lower_bounds_any_inner_point(self, p, r):
        """MINDIST must lower-bound the distance to anything in the rect."""
        d = point_rect_distance2(p, r)
        corner = Point(
            min(max(p.x, r.xmin), r.xmax), min(max(p.y, r.ymin), r.ymax)
        )
        assert d == pytest.approx(point_point_distance2(p, corner))


class TestRectRect:
    def test_overlapping_zero(self):
        assert rect_rect_distance2(Rect(0, 0, 5, 5), Rect(3, 3, 8, 8)) == 0

    def test_touching_zero(self):
        assert rect_rect_distance2(Rect(0, 0, 5, 5), Rect(5, 5, 8, 8)) == 0

    def test_diagonal_gap(self):
        assert rect_rect_distance2(Rect(0, 0, 5, 5), Rect(8, 9, 10, 10)) == 25

    @given(rects(), rects())
    def test_symmetric(self, a, b):
        assert rect_rect_distance2(a, b) == rect_rect_distance2(b, a)

    @given(rects(), rects())
    def test_zero_iff_intersecting(self, a, b):
        assert (rect_rect_distance2(a, b) == 0) == a.intersects(b)
