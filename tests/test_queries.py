"""Integration tests for the five queries of Section 5.

Every structure must return identical, oracle-verified answers for every
query -- the paper's premise is that the structures differ in cost, never
in results.
"""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.queries import (
    enclosing_polygon,
    iter_nearest,
    nearest_segment,
    segments_at_other_endpoint,
    segments_at_point,
    window_query,
)
from repro.geometry import Point, Rect, Segment

from tests.conftest import (
    ALL_STRUCTURES,
    build_index,
    lattice_map,
    oracle_at_point,
    oracle_in_window,
    oracle_nearest_dist2,
    random_planar_segments,
)


class TestQuery1PointIncidence:
    def test_matches_oracle_everywhere(self, any_structure):
        rng = random.Random(61)
        segs = random_planar_segments(rng)
        idx = build_index(any_structure, segs)
        for s in segs:
            for p in (s.start, s.end):
                assert set(segments_at_point(idx, p)) == set(oracle_at_point(segs, p))

    def test_point_not_an_endpoint(self, any_structure):
        segs = lattice_map(n=4, pitch=150)
        idx = build_index(any_structure, segs)
        assert segments_at_point(idx, Point(3, 3)) == []

    def test_interior_point_of_segment_not_incident(self, any_structure):
        segs = [Segment(100, 100, 300, 100)]
        idx = build_index(any_structure, segs)
        assert segments_at_point(idx, Point(200, 100)) == []


class TestQuery2OtherEndpoint:
    def test_finds_other_end(self, any_structure):
        segs = lattice_map(n=5, pitch=120)
        idx = build_index(any_structure, segs)
        seg_id = 7
        s = segs[seg_id]
        other, incident = segments_at_other_endpoint(idx, s.start, seg_id)
        assert other == s.end
        expected = set(oracle_at_point(segs, s.end)) - {seg_id}
        assert set(incident) == expected

    def test_wrong_point_raises(self, any_structure):
        segs = lattice_map(n=4, pitch=150)
        idx = build_index(any_structure, segs)
        with pytest.raises(KeyError):
            segments_at_other_endpoint(idx, Point(1, 1), 0)


class TestQuery3Nearest:
    def test_matches_oracle_on_random_points(self, any_structure):
        rng = random.Random(62)
        segs = random_planar_segments(rng)
        idx = build_index(any_structure, segs)
        for _ in range(25):
            p = Point(rng.randint(0, 1023), rng.randint(0, 1023))
            sid, d2 = nearest_segment(idx, p)
            assert d2 == pytest.approx(oracle_nearest_dist2(segs, p))
            # The returned segment actually achieves that distance.
            assert segs[sid].distance2_to_point(p) == pytest.approx(d2)

    def test_empty_index(self, any_structure):
        from repro.storage import StorageContext
        from tests.conftest import make_index

        idx = make_index(any_structure, StorageContext.create())
        assert nearest_segment(idx, Point(5, 5)) is None

    def test_point_on_segment_gives_zero(self, any_structure):
        segs = lattice_map(n=4, pitch=150)
        idx = build_index(any_structure, segs)
        p = Point(segs[0].x1, segs[0].y1)
        sid, d2 = nearest_segment(idx, p)
        assert d2 == 0

    def test_iter_nearest_is_sorted_and_complete(self, any_structure):
        rng = random.Random(63)
        segs = random_planar_segments(rng, n_cells=4)
        idx = build_index(any_structure, segs)
        p = Point(500, 500)
        results = list(iter_nearest(idx, p))
        assert len(results) == len(segs)
        dists = [d for _, d in results]
        assert dists == sorted(dists)
        assert {sid for sid, _ in results} == set(range(len(segs)))
        # And each reported distance is the true one.
        for sid, d2 in results:
            assert segs[sid].distance2_to_point(p) == pytest.approx(d2)


class TestQuery4Polygon:
    def test_unit_square_face(self, any_structure):
        segs = lattice_map(n=4, pitch=150)
        idx = build_index(any_structure, segs)
        # A point inside the cell between lattice points (0,0) and (1,1).
        r = enclosing_polygon(idx, Point(225, 225))
        assert r is not None and r.closed
        assert not r.is_outer
        assert r.size == 4
        assert r.vertices[0] == r.vertices[-1]

    def test_all_structures_agree(self):
        segs = lattice_map(n=5, pitch=120)
        results = {}
        for kind in ALL_STRUCTURES:
            idx = build_index(kind, segs)
            r = enclosing_polygon(idx, Point(350, 290))
            results[kind] = (tuple(sorted(r.seg_ids)), r.is_outer, r.size)
        assert len(set(results.values())) == 1, results

    def test_outer_face_detected(self, any_structure):
        segs = lattice_map(n=3, pitch=100)  # occupies [100..300]^2
        idx = build_index(any_structure, segs)
        r = enclosing_polygon(idx, Point(900, 900))
        assert r is not None and r.closed
        assert r.is_outer

    def test_face_with_dangling_edge(self, any_structure):
        # A square face with a stub poking inward: the stub is walked
        # twice (in and out), as in any DCEL face traversal.
        segs = [
            Segment(100, 100, 300, 100),
            Segment(300, 100, 300, 200),  # right side, noded at the stub
            Segment(300, 200, 300, 300),
            Segment(300, 300, 100, 300),
            Segment(100, 300, 100, 100),
            Segment(300, 200, 200, 200),  # dangling stub into the face
        ]
        idx = build_index(any_structure, segs)
        r = enclosing_polygon(idx, Point(150, 150))
        assert r.closed
        assert not r.is_outer
        # 5 boundary edges + the stub twice = 7 edge steps.
        assert r.size == 7
        assert r.seg_ids.count(5) == 2

    def test_empty_index_returns_none(self, any_structure):
        from repro.storage import StorageContext
        from tests.conftest import make_index

        idx = make_index(any_structure, StorageContext.create())
        assert enclosing_polygon(idx, Point(5, 5)) is None

    def test_isolated_segment_degenerate_face(self, any_structure):
        segs = [Segment(100, 100, 300, 200)]
        idx = build_index(any_structure, segs)
        r = enclosing_polygon(idx, Point(200, 300))
        assert r.closed
        assert r.size == 2  # out and back along the only edge

    def test_rural_style_large_face(self, any_structure):
        # A long "ladder without rungs": two parallel meanders joined at
        # the ends (the paper's road+stream tandem polygon).
        top = [Segment(100 + i * 80, 400, 180 + i * 80, 400) for i in range(8)]
        bottom = [Segment(100 + i * 80, 600, 180 + i * 80, 600) for i in range(8)]
        caps = [Segment(100, 400, 100, 600), Segment(740, 400, 740, 600)]
        segs = top + bottom + caps
        idx = build_index(any_structure, segs)
        r = enclosing_polygon(idx, Point(400, 500))
        assert r.closed and not r.is_outer
        assert r.size == len(segs)


class TestQuery5Window:
    def test_matches_oracle(self, any_structure):
        rng = random.Random(64)
        segs = random_planar_segments(rng)
        idx = build_index(any_structure, segs)
        for _ in range(25):
            x, y = rng.randint(0, 900), rng.randint(0, 900)
            w = Rect(x, y, x + rng.randint(5, 200), y + rng.randint(5, 200))
            assert set(window_query(idx, w)) == set(oracle_in_window(segs, w))

    def test_empty_window(self, any_structure):
        segs = lattice_map(n=3, pitch=100)  # occupies [100..300]^2
        idx = build_index(any_structure, segs)
        assert window_query(idx, Rect(700, 700, 800, 800)) == []

    def test_window_touching_endpoint_only(self, any_structure):
        segs = [Segment(100, 100, 300, 100)]
        idx = build_index(any_structure, segs)
        assert window_query(idx, Rect(300, 100, 400, 200)) == [0]

    def test_window_crossing_interior_only(self, any_structure):
        """A window the segment passes through without any endpoint."""
        segs = [Segment(100, 150, 500, 150)]
        idx = build_index(any_structure, segs)
        assert window_query(idx, Rect(250, 100, 300, 200)) == [0]


class TestCrossStructureAgreement:
    @settings(deadline=None, max_examples=10)
    @given(st.integers(0, 10_000))
    def test_all_five_queries_agree_across_structures(self, seed):
        rng = random.Random(seed)
        segs = random_planar_segments(rng, n_cells=5)
        indexes = {k: build_index(k, segs) for k in ALL_STRUCTURES}

        p_end = segs[rng.randrange(len(segs))].start
        q1 = {k: set(segments_at_point(idx, p_end)) for k, idx in indexes.items()}
        assert len({frozenset(v) for v in q1.values()}) == 1

        p = Point(rng.randint(0, 1023), rng.randint(0, 1023))
        q3 = {k: nearest_segment(idx, p)[1] for k, idx in indexes.items()}
        base = next(iter(q3.values()))
        for v in q3.values():
            assert v == pytest.approx(base)

        w = Rect(100, 100, 600, 600)
        q5 = {k: frozenset(window_query(idx, w)) for k, idx in indexes.items()}
        assert len(set(q5.values())) == 1
