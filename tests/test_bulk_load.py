"""Tests for STR bulk loading."""

import random

import pytest

from repro.core.queries import nearest_segment, segments_at_point, window_query
from repro.core.rtree import GuttmanRTree, RStarTree, bulk_load_str
from repro.geometry import Point, Rect
from repro.storage import StorageContext

from tests.conftest import (
    lattice_map,
    oracle_at_point,
    oracle_in_window,
    oracle_nearest_dist2,
    random_planar_segments,
)


def str_build(segments, cls=RStarTree, fill=1.0, capacity=None):
    ctx = StorageContext.create()
    idx = cls(ctx) if capacity is None else cls(ctx, capacity=capacity)
    ids = ctx.load_segments(segments)
    bulk_load_str(idx, ids, fill=fill)
    return idx


class TestStructure:
    def test_invariants_hold(self):
        segs = lattice_map(n=12, pitch=75, jitter=10, seed=2)
        idx = str_build(segs)
        idx.check_invariants()
        assert idx.entry_count() == len(segs)

    def test_single_leaf_when_few(self):
        idx = str_build(lattice_map(n=3, pitch=100))
        assert idx.height() == 1
        idx.check_invariants()

    def test_empty_load(self):
        ctx = StorageContext.create()
        idx = RStarTree(ctx)
        bulk_load_str(idx, [])
        assert idx.entry_count() == 0
        idx.check_invariants()

    def test_nonempty_tree_rejected(self):
        segs = lattice_map(n=3, pitch=100)
        ctx = StorageContext.create()
        idx = RStarTree(ctx)
        ids = ctx.load_segments(segs)
        idx.insert(ids[0])
        with pytest.raises(ValueError):
            bulk_load_str(idx, ids[1:])

    def test_fill_validation(self):
        ctx = StorageContext.create()
        idx = RStarTree(ctx)
        with pytest.raises(ValueError):
            bulk_load_str(idx, [], fill=0.01)

    def test_packed_denser_than_dynamic(self):
        segs = lattice_map(n=14, pitch=65, jitter=10, seed=3)
        packed = str_build(segs)
        ctx = StorageContext.create()
        dynamic = RStarTree(ctx)
        for sid in ctx.load_segments(segs):
            dynamic.insert(sid)
        assert packed.page_count() < dynamic.page_count()
        assert packed.leaf_occupancy() > dynamic.leaf_occupancy()

    def test_reduced_fill_leaves_headroom(self):
        segs = lattice_map(n=14, pitch=65)
        tight = str_build(segs, fill=1.0)
        loose = str_build(segs, fill=0.7)
        assert loose.page_count() > tight.page_count()
        # Headroom means later inserts don't split immediately.
        loose.check_invariants()


class TestQueriesOnPackedTree:
    def test_queries_match_oracle(self):
        rng = random.Random(91)
        segs = random_planar_segments(rng)
        idx = str_build(segs, capacity=8)
        idx.check_invariants()
        for s in segs[:15]:
            assert set(segments_at_point(idx, s.start)) == set(
                oracle_at_point(segs, s.start)
            )
        w = Rect(100, 200, 650, 800)
        assert set(window_query(idx, w)) == set(oracle_in_window(segs, w))
        p = Point(512, 300)
        assert nearest_segment(idx, p)[1] == pytest.approx(
            oracle_nearest_dist2(segs, p)
        )

    def test_dynamic_insert_after_bulk_load(self):
        segs = lattice_map(n=8, pitch=110)
        ctx = StorageContext.create()
        idx = RStarTree(ctx)
        ids = ctx.load_segments(segs)
        bulk_load_str(idx, ids[:-10], fill=0.7)
        for sid in ids[-10:]:
            idx.insert(sid)
        idx.check_invariants()
        assert idx.entry_count() == len(segs)

    def test_delete_after_bulk_load(self):
        segs = lattice_map(n=8, pitch=110)
        ctx = StorageContext.create()
        idx = GuttmanRTree(ctx)
        ids = ctx.load_segments(segs)
        bulk_load_str(idx, ids)
        for sid in ids[:20]:
            idx.delete(sid)
        idx.check_invariants()
        assert idx.entry_count() == len(segs) - 20

    def test_build_cheaper_than_dynamic(self):
        # Big enough that the dynamic tree outgrows the 16-page pool;
        # below that, both builds run entirely from cache.
        segs = lattice_map(n=25, pitch=38, jitter=6, seed=4)

        ctx1 = StorageContext.create()
        packed = RStarTree(ctx1)
        ids = ctx1.load_segments(segs)
        before = ctx1.counters.snapshot()
        bulk_load_str(packed, ids)
        packed_cost = ctx1.counters.since(before).disk_reads

        ctx2 = StorageContext.create()
        dynamic = RStarTree(ctx2)
        ids = ctx2.load_segments(segs)
        before = ctx2.counters.snapshot()
        for sid in ids:
            dynamic.insert(sid)
        dynamic_cost = ctx2.counters.since(before).disk_reads

        assert packed_cost < dynamic_cost
