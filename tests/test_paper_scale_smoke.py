"""Opt-in paper-scale smoke test.

Run with ``REPRO_FULL=1 pytest tests/test_paper_scale_smoke.py`` to build
every structure over a full ~50 000-segment county and verify structural
invariants and cross-structure query agreement at the paper's size.
Skipped by default (it takes a minute or two on one core).
"""

import os
import random

import pytest

from repro.core.queries import nearest_segment, segments_at_point, window_query
from repro.data import generate_county
from repro.geometry import Point, Rect
from repro.harness import build_structure

pytestmark = pytest.mark.skipif(
    not os.environ.get("REPRO_FULL"),
    reason="paper-scale smoke test; set REPRO_FULL=1 to run",
)


def test_paper_scale_build_and_agree():
    county = generate_county("cecil", scale=1.0)
    assert len(county) > 40_000

    built = {
        name: build_structure(name, county) for name in ("R*", "R+", "PMR")
    }
    for name, b in built.items():
        b.index.check_invariants()

    rng = random.Random(5)
    for _ in range(20):
        seg = county.segments[rng.randrange(len(county))]
        results = {
            name: frozenset(segments_at_point(b.index, seg.start))
            for name, b in built.items()
        }
        assert len(set(results.values())) == 1, results

    for _ in range(10):
        p = Point(rng.randrange(16384), rng.randrange(16384))
        dists = {
            name: nearest_segment(b.index, p)[1] for name, b in built.items()
        }
        assert max(dists.values()) == pytest.approx(min(dists.values()))

    for _ in range(10):
        x, y = rng.randrange(16000), rng.randrange(16000)
        w = Rect(x, y, x + 300, y + 300)
        results = {
            name: frozenset(window_query(b.index, w))
            for name, b in built.items()
        }
        assert len(set(results.values())) == 1
