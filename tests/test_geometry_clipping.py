"""Tests for Cohen-Sutherland / Liang-Barsky clipping and the fast
segment-rectangle intersection predicate.

The two clippers are cross-checked against each other and against a brute
sampling oracle; the boolean predicate must agree with the clippers.
"""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.geometry import (
    Point,
    Rect,
    clip_cohen_sutherland,
    clip_liang_barsky,
    segment_intersects_rect,
)

coords = st.integers(min_value=0, max_value=100)
points = st.builds(Point, coords, coords)
RECT = Rect(20, 20, 60, 60)


def rects():
    return st.builds(
        lambda x1, y1, x2, y2: Rect(min(x1, x2), min(y1, y2), max(x1, x2), max(y1, y2)),
        coords,
        coords,
        coords,
        coords,
    )


def sample_oracle(p1, p2, rect, n=2000):
    """Dense parametric sampling: does any sampled point land in rect?"""
    for i in range(n + 1):
        t = i / n
        x = p1.x + t * (p2.x - p1.x)
        y = p1.y + t * (p2.y - p1.y)
        if rect.xmin <= x <= rect.xmax and rect.ymin <= y <= rect.ymax:
            return True
    return False


class TestClipKnownCases:
    def test_fully_inside(self):
        got = clip_cohen_sutherland(Point(30, 30), Point(50, 50), RECT)
        assert got == (Point(30, 30), Point(50, 50))

    def test_fully_outside_one_side(self):
        assert clip_cohen_sutherland(Point(0, 0), Point(10, 10), RECT) is None

    def test_crossing_horizontally(self):
        got = clip_cohen_sutherland(Point(0, 40), Point(100, 40), RECT)
        assert got == (Point(20, 40), Point(60, 40))

    def test_diagonal_through_corner_region(self):
        got = clip_cohen_sutherland(Point(0, 0), Point(80, 80), RECT)
        assert got == (Point(20, 20), Point(60, 60))

    def test_grazing_corner(self):
        # Line x + y = 80 touches the rect exactly at (20, 60) and (60, 20)?
        # No: it passes through both; the clip is the chord between them.
        got = clip_liang_barsky(Point(0, 80), Point(80, 0), RECT)
        assert got is not None
        a, b = got
        assert {a, b} == {Point(20.0, 60.0), Point(60.0, 20.0)}

    def test_touching_single_point(self):
        # Line x + y = 120 grazes the corner (60, 60) only.
        got = clip_liang_barsky(Point(40, 80), Point(80, 40), RECT)
        assert got is not None
        a, b = got
        assert a == b == Point(60.0, 60.0)

    def test_miss_beyond_corner(self):
        assert clip_liang_barsky(Point(55, 80), Point(80, 55), RECT) is None
        assert clip_cohen_sutherland(Point(55, 80), Point(80, 55), RECT) is None

    def test_vertical_segment(self):
        got = clip_liang_barsky(Point(40, 0), Point(40, 100), RECT)
        assert got == (Point(40, 20), Point(40, 60))

    def test_degenerate_segment_inside(self):
        got = clip_liang_barsky(Point(30, 30), Point(30, 30), RECT)
        assert got == (Point(30, 30), Point(30, 30))

    def test_degenerate_segment_outside(self):
        assert clip_liang_barsky(Point(0, 0), Point(0, 0), RECT) is None
        assert clip_cohen_sutherland(Point(0, 0), Point(0, 0), RECT) is None


class TestClipProperties:
    @given(points, points, rects())
    def test_both_algorithms_agree_on_hit(self, p1, p2, rect):
        cs = clip_cohen_sutherland(p1, p2, rect)
        lb = clip_liang_barsky(p1, p2, rect)
        assert (cs is None) == (lb is None)
        if cs is not None and lb is not None:
            (a1, b1), (a2, b2) = cs, lb
            assert a1.x == pytest.approx(a2.x, abs=1e-6)
            assert a1.y == pytest.approx(a2.y, abs=1e-6)
            assert b1.x == pytest.approx(b2.x, abs=1e-6)
            assert b1.y == pytest.approx(b2.y, abs=1e-6)

    @given(points, points, rects())
    def test_clip_result_inside_rect(self, p1, p2, rect):
        got = clip_liang_barsky(p1, p2, rect)
        if got is not None:
            eps = 1e-9
            for p in got:
                assert rect.xmin - eps <= p.x <= rect.xmax + eps
                assert rect.ymin - eps <= p.y <= rect.ymax + eps

    @given(points, points, rects())
    def test_endpoints_inside_are_preserved(self, p1, p2, rect):
        got = clip_liang_barsky(p1, p2, rect)
        if rect.contains_point(p1) and rect.contains_point(p2):
            assert got == (p1, p2)

    @given(points, points)
    def test_predicate_matches_clipper(self, p1, p2):
        assert segment_intersects_rect(p1, p2, RECT) == (
            clip_liang_barsky(p1, p2, RECT) is not None
        )

    @given(points, points, rects())
    def test_predicate_matches_clipper_any_rect(self, p1, p2, rect):
        assert segment_intersects_rect(p1, p2, rect) == (
            clip_liang_barsky(p1, p2, rect) is not None
        )

    @given(points, points)
    def test_predicate_vs_sampling_oracle_when_hit(self, p1, p2):
        # Sampling can miss grazing hits but never fabricates one.
        if sample_oracle(p1, p2, RECT, n=500):
            assert segment_intersects_rect(p1, p2, RECT)
