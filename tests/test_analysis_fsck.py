"""Index fsck: clean on fresh builds, exact findings under injected corruption.

Every corruption test damages one structure in one specific way and
asserts the checker reports the *exact* rule id (and, where the rule
anchors to a page, the exact page id) — no grepping of message strings.
The clean tests establish that none of these rules fire on a fresh build
or a fresh snapshot.
"""

from __future__ import annotations

import pytest

from tests.conftest import build_index, lattice_map
from repro.analysis import check_index, check_snapshot, has_errors
from repro.analysis.fsck_pmr import PM01
from repro.analysis.fsck_rplus import RX01, RX03
from repro.analysis.fsck_rtree import RS01, RS02, RS06
from repro.analysis.fsck_storage import FS03, FS04, FS05
from repro.geometry import Rect
from repro.service import MapServer, QueryEngine, save_index, send_request


def build(kind: str):
    return build_index(kind, lattice_map(8))


def rules_of(findings):
    return {f.rule for f in findings}


def findings_for(findings, rule):
    return [f for f in findings if f.rule == rule]


# ----------------------------------------------------------------------
# Clean on fresh builds and fresh snapshots
# ----------------------------------------------------------------------
@pytest.mark.parametrize("kind", ["R*", "R", "R+", "R+t", "PMR", "PM1"])
def test_fresh_build_has_zero_findings(kind):
    assert check_index(build(kind)) == []


@pytest.mark.parametrize("kind", ["R*", "R+", "PMR"])
def test_fresh_snapshot_has_zero_findings(kind, tmp_path):
    path = tmp_path / "fresh.snap"
    save_index(build(kind), path)
    assert check_snapshot(path) == []


def test_check_does_not_move_counters():
    idx = build("R*")
    ctx = idx.ctx
    before = (
        ctx.counters.disk_reads,
        ctx.counters.disk_writes,
        ctx.counters.buffer_hits,
        ctx.counters.segment_comps,
        ctx.counters.bbox_comps,
        ctx.disk.physical_reads,
    )
    check_index(idx)
    after = (
        ctx.counters.disk_reads,
        ctx.counters.disk_writes,
        ctx.counters.buffer_hits,
        ctx.counters.segment_comps,
        ctx.counters.bbox_comps,
        ctx.disk.physical_reads,
    )
    assert before == after


def test_unsupported_structure_raises():
    idx = build("grid")
    with pytest.raises(ValueError):
        check_index(idx)


# ----------------------------------------------------------------------
# Corruption injection: R-tree family
# ----------------------------------------------------------------------
def _internal_root(idx):
    root = idx.ctx.disk.peek(idx._root_id)
    assert not root.is_leaf, "test map must build a multi-level tree"
    return root


def test_inflated_parent_entry_is_rs02():
    idx = build("R*")
    root = _internal_root(idx)
    rect, child = root.entries[0]
    root.entries[0] = (
        Rect(rect.xmin - 5, rect.ymin - 5, rect.xmax + 5, rect.ymax + 5),
        child,
    )
    findings = check_index(idx)
    hits = findings_for(findings, RS02)
    assert hits and any(f.page_id == child for f in hits)


def test_child_mbr_escaping_parent_entry_is_rs01():
    idx = build("R*")
    root = _internal_root(idx)
    rect, child = root.entries[0]
    mid_x = (rect.xmin + rect.xmax) / 2
    mid_y = (rect.ymin + rect.ymax) / 2
    root.entries[0] = (Rect(rect.xmin, rect.ymin, mid_x, mid_y), child)
    findings = check_index(idx)
    hits = findings_for(findings, RS01)
    assert hits and any(f.page_id == child for f in hits)


def test_leaf_entry_pointing_at_freed_page_is_rs06():
    idx = build("R*")
    root = _internal_root(idx)
    leaf_pid = root.entries[0][1]
    assert idx.ctx.disk.peek(leaf_pid).is_leaf
    idx.ctx.disk.free(leaf_pid)
    findings = check_index(idx)
    assert any(f.page_id == leaf_pid for f in findings_for(findings, RS06))
    # the storage layer independently flags the freed-but-referenced page
    assert any(f.page_id == leaf_pid for f in findings_for(findings, FS03))


def test_dangling_segment_pointer_is_fs04():
    idx = build("R*")
    root = _internal_root(idx)
    leaf = idx.ctx.disk.peek(root.entries[0][1])
    rect, _ = leaf.entries[0]
    bogus = len(idx.ctx.segments) + 7
    leaf.entries[0] = (rect, bogus)
    findings = check_index(idx)
    hits = findings_for(findings, FS04)
    assert hits and str(bogus) in hits[0].detail


def test_truncated_segment_table_is_fs05():
    idx = build("R*")
    pid = idx.ctx.segments._page_ids[-1]
    idx.ctx.disk.free(pid)
    findings = check_index(idx)
    assert any(f.page_id == pid for f in findings_for(findings, FS05))


# ----------------------------------------------------------------------
# Corruption injection: R+ disjointness
# ----------------------------------------------------------------------
def test_overlapping_rplus_siblings_is_rx01():
    idx = build("R+")
    root = idx.ctx.disk.peek(idx._root_id)
    assert not root.is_leaf, "test map must split the R+ root"
    (r0, c0), (r1, _c1) = root.entries[0], root.entries[1]
    root.entries[0] = (Rect.union_of([r0, r1]), c0)
    findings = check_index(idx)
    hits = findings_for(findings, RX01)
    assert hits and any(f.page_id == idx._root_id for f in hits)
    # the expanded region also breaks the exact-tiling area check
    assert RX03 in rules_of(findings)


# ----------------------------------------------------------------------
# Corruption injection: PMR B-tree Morton order
# ----------------------------------------------------------------------
def test_swapped_btree_keys_is_pm01():
    idx = build("PMR")
    disk = idx.ctx.disk
    leaf_pid = None
    for pid in sorted(idx.btree._page_ids):
        node = disk.peek(pid)
        if (
            getattr(node, "is_leaf", False)
            and len(node.entries) >= 2
            and node.entries[0] < node.entries[1]
        ):
            leaf_pid = pid
            break
    assert leaf_pid is not None, "test map must fill a B-tree leaf"
    node = disk.peek(leaf_pid)
    node.entries[0], node.entries[1] = node.entries[1], node.entries[0]
    findings = check_index(idx)
    hits = findings_for(findings, PM01)
    assert hits and any(f.page_id == leaf_pid for f in hits)


# ----------------------------------------------------------------------
# The service hook: engine.check() and {"op": "check"}
# ----------------------------------------------------------------------
def test_engine_check_clean_and_after_corruption():
    idx = build("R*")
    engine = QueryEngine(idx)
    assert engine.check() == {"clean": True, "findings": []}

    root = _internal_root(idx)
    rect, child = root.entries[0]
    root.entries[0] = (
        Rect(rect.xmin - 5, rect.ymin - 5, rect.xmax + 5, rect.ymax + 5),
        child,
    )
    out = engine.check()
    assert out["clean"] is False
    assert RS02 in {f["rule"] for f in out["findings"]}
    assert any(f["page_id"] == child for f in out["findings"] if f["rule"] == RS02)


def test_server_check_op_round_trip():
    engine = QueryEngine(build("PMR"))
    server = MapServer(engine, port=0)
    server.start_background()
    try:
        response = send_request(server.address, {"op": "check"})
    finally:
        server.shutdown()
        server.server_close()
    assert response["ok"] is True
    assert response["result"] == {"clean": True, "findings": []}


# ----------------------------------------------------------------------
# CLI exit codes
# ----------------------------------------------------------------------
def test_cli_check_exit_codes(tmp_path, capsys):
    from repro.__main__ import main

    path = tmp_path / "cli.snap"
    save_index(build("R+"), path)
    assert main(["check", str(path)]) == 0
    assert "clean: 0 findings" in capsys.readouterr().out

    bad = tmp_path / "bad.snap"
    bad.write_bytes(b"not a snapshot")
    assert main(["check", str(bad)]) == 2
    assert main(["check", str(tmp_path / "missing.snap")]) == 2


def test_has_errors_distinguishes_warnings():
    from repro.analysis.findings import error, warning

    assert not has_errors([warning("RX08", 1, "", "overfull")])
    assert has_errors([warning("RX08", 1, "", "x"), error("RS01", 2, "", "y")])
