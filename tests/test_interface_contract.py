"""Contract tests: behaviours every SpatialIndex must share."""

import pytest

from repro.core.queries import (
    iter_nearest,
    nearest_segment,
    segments_at_point,
    window_query,
)
from repro.geometry import Point, Rect, Segment
from repro.storage import StorageContext

from tests.conftest import ALL_STRUCTURES, TEST_WORLD, build_index, make_index


@pytest.fixture
def empty_index(any_structure):
    return make_index(any_structure, StorageContext.create())


SEGS = [
    Segment(100, 100, 300, 100),
    Segment(300, 100, 300, 300),
    Segment(300, 300, 100, 300),
    Segment(100, 300, 100, 100),
]


class TestEmptyIndex:
    def test_counts(self, empty_index):
        assert empty_index.entry_count() == 0
        assert empty_index.page_count() >= 0
        assert empty_index.height() >= 1

    def test_queries_empty(self, empty_index):
        assert empty_index.candidate_ids_at_point(Point(1, 1)) == []
        assert empty_index.candidate_ids_in_rect(Rect(0, 0, 100, 100)) == []
        assert nearest_segment(empty_index, Point(5, 5)) is None
        assert list(iter_nearest(empty_index, Point(5, 5))) == []

    def test_invariants_hold(self, empty_index):
        empty_index.check_invariants()


class TestPopulatedContract:
    def test_bytes_used_is_pages_times_page_size(self, any_structure):
        idx = build_index(any_structure, SEGS)
        assert idx.bytes_used() == idx.page_count() * idx.ctx.page_size

    def test_entry_count_at_least_segments(self, any_structure):
        idx = build_index(any_structure, SEGS)
        assert idx.entry_count() >= len(SEGS)

    def test_counters_shared_with_context(self, any_structure):
        idx = build_index(any_structure, SEGS)
        assert idx.counters is idx.ctx.counters

    def test_repr_mentions_size(self, any_structure):
        idx = build_index(any_structure, SEGS)
        text = repr(idx)
        assert type(idx).__name__ in text

    def test_bulk_load_helper_equivalent(self, any_structure):
        ctx1 = StorageContext.create()
        a = make_index(any_structure, ctx1)
        ids = ctx1.load_segments(SEGS)
        a.bulk_load(ids)

        ctx2 = StorageContext.create()
        b = make_index(any_structure, ctx2)
        for sid in ctx2.load_segments(SEGS):
            b.insert(sid)

        w = Rect(0, 0, TEST_WORLD, TEST_WORLD)
        assert set(window_query(a, w)) == set(window_query(b, w))

    def test_candidates_never_false_negative_on_endpoints(self, any_structure):
        idx = build_index(any_structure, SEGS)
        for i, s in enumerate(SEGS):
            for p in s.endpoints():
                assert i in idx.candidate_ids_at_point(p), (i, p)

    def test_query_layer_results_sorted_ids_unique(self, any_structure):
        idx = build_index(any_structure, SEGS)
        got = window_query(idx, Rect(0, 0, TEST_WORLD, TEST_WORLD))
        assert len(got) == len(set(got))

    def test_point_query_counts_metrics(self, any_structure):
        idx = build_index(any_structure, SEGS)
        before = idx.ctx.counters.snapshot()
        segments_at_point(idx, Point(100, 100))
        delta = idx.ctx.counters.since(before)
        assert delta.segment_comps >= 1
        assert delta.bbox_comps >= 1

    def test_metrics_isolated_between_instances(self, any_structure):
        a = build_index(any_structure, SEGS)
        b = build_index(any_structure, SEGS)
        before_b = b.ctx.counters.snapshot()
        segments_at_point(a, Point(100, 100))
        assert b.ctx.counters.snapshot() == before_b
