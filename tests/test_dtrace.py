"""Distributed tracing, clock anchoring, and the sampling profiler.

Covers the cross-process observability stack end to end:

* :mod:`repro.obs.dtrace` -- context wire forms (v1 JSON field, v2
  binary trailer), deterministic head sampling, thread-local handoff;
* :mod:`repro.obs.clock` -- the monotonic anchor: span durations stay
  non-negative under a wall-clock step (the S2 regression);
* tail-based retention in :class:`repro.obs.trace.Tracer` -- unsampled
  skeletons discard, errored and slow ones keep;
* v1 propagation through the threaded :class:`MapServer` and the
  stitched cross-shard tree through :class:`ShardRouter`, including the
  per-shard counter-parity oracle (span cost attribution equals engine
  counters to the unit);
* :mod:`repro.obs.profile` -- op attribution, collapsed stacks, merge.
"""

import threading
import time
from unittest import mock

import pytest

from repro.data import generate_county
from repro.metric_names import COUNTER_FIELDS
from repro.obs import dtrace
from repro.obs.clock import now_us, wall_now_us
from repro.obs.profile import (
    PROFILER,
    collapsed_text,
    merge_profiles,
)
from repro.obs.trace import TRACER, format_trace_tree
from repro.service import MapServer, QueryEngine, send_request
from repro.service.api import parse_request
from repro.shard import LocalShardSet, ShardRouter, init_shard_set

from tests.conftest import build_index, lattice_map


@pytest.fixture()
def tracer():
    """The process-wide tracer, cleared on entry and disarmed on exit."""
    TRACER.clear()
    yield TRACER
    TRACER.disarm()
    TRACER.clear()


def _engine():
    return QueryEngine(build_index("R*", lattice_map(n=8)))


def _window(engine, **kw):
    req = {"op": "window", "x1": 0, "y1": 0, "x2": 400, "y2": 400}
    req.update(kw)
    return engine.execute(parse_request(req))


# ----------------------------------------------------------------------
# Context wire forms
# ----------------------------------------------------------------------
class TestTraceContext:
    def test_ids_have_wire_width(self):
        ctx = dtrace.TraceContext.new_root(1.0)
        assert len(ctx.trace_id) == dtrace.TRACE_ID_HEX
        assert len(ctx.span_id) == dtrace.SPAN_ID_HEX
        int(ctx.trace_id, 16), int(ctx.span_id, 16)

    def test_v1_json_roundtrip(self):
        ctx = dtrace.TraceContext.new_root(1.0)
        back = dtrace.TraceContext.from_wire(ctx.to_wire())
        assert (back.trace_id, back.span_id, back.sampled) == (
            ctx.trace_id,
            ctx.span_id,
            ctx.sampled,
        )

    def test_v2_trailer_roundtrip(self):
        ctx = dtrace.TraceContext(dtrace.new_trace_id(), dtrace.new_span_id(), True)
        blob = ctx.to_trailer()
        assert len(blob) == dtrace.TRAILER_BYTES
        back = dtrace.TraceContext.from_trailer(blob)
        assert (back.trace_id, back.span_id, back.sampled) == (
            ctx.trace_id,
            ctx.span_id,
            True,
        )

    @pytest.mark.parametrize(
        "raw",
        [
            None,
            "nope",
            {},
            {"t": "short", "s": "also"},
            {"t": "f" * 32, "s": "g" * 16},  # non-hex
            {"t": "a" * 32, "s": "b" * 16, "f": "x"},  # bad flags type
            {"t": "a" * 31, "s": "b" * 16},  # bad length
        ],
    )
    def test_malformed_contexts_degrade_to_none(self, raw):
        assert dtrace.TraceContext.from_wire(raw) is None

    def test_short_trailer_degrades_to_none(self):
        assert dtrace.TraceContext.from_trailer(b"short") is None

    def test_child_keeps_trace_id_and_flag(self):
        ctx = dtrace.TraceContext("a" * 32, "b" * 16, True)
        child = ctx.child()
        assert child.trace_id == ctx.trace_id
        assert child.span_id != ctx.span_id
        assert child.sampled is True

    def test_head_sampling_is_deterministic_and_bounded(self):
        assert dtrace.head_sampled("f" * 32, 1.0) is True
        assert dtrace.head_sampled("0" * 32, 0.0) is False
        ids = [dtrace.new_trace_id() for _ in range(200)]
        half = [dtrace.head_sampled(t, 0.5) for t in ids]
        # Deterministic: the same id always decides the same way.
        assert half == [dtrace.head_sampled(t, 0.5) for t in ids]
        # Both verdicts occur at rate 0.5 over 200 draws.
        assert any(half) and not all(half)


# ----------------------------------------------------------------------
# Clock anchoring (S2)
# ----------------------------------------------------------------------
class TestClockAnchor:
    def test_now_us_is_monotonic(self):
        a = now_us()
        b = now_us()
        assert b >= a >= 0

    def test_wall_clock_step_cannot_produce_negative_durations(self, tracer):
        """The S2 regression: span timing must survive a wall step.

        Every timestamp derives from the monotonic anchor; a backwards
        ``time.time()`` jump mid-span must not reorder anything.
        """
        tracer.arm(1.0)
        engine = _engine()
        real_time = time.time
        with mock.patch("time.time", side_effect=lambda: real_time() - 3600.0):
            # wall_now_us ignores the patched wall clock entirely ...
            w1 = wall_now_us()
            w2 = wall_now_us()
            assert w2 >= w1
            _window(engine)
        traces = tracer.recent()
        assert traces

        def assert_nonnegative(rec):
            assert rec.get("dur_us", 0) >= 0, rec
            assert rec.get("start_us", 0) >= 0, rec
            for child in rec.get("spans", ()):
                assert_nonnegative(child)

        assert_nonnegative(traces[-1])

    def test_slow_log_uses_anchored_wall_clock(self):
        from repro.obs.metrics import SlowQueryLog

        log = SlowQueryLog(threshold_ms=0.0)
        real_time = time.time
        with mock.patch("time.time", side_effect=lambda: real_time() - 3600.0):
            assert log.record("window", 0.001, {})
        entry = log.stats()["entries"][0]
        # Anchored: within a minute of true wall time, not an hour off.
        assert abs(entry["unix_time"] - real_time()) < 60.0


# ----------------------------------------------------------------------
# Tail-based retention
# ----------------------------------------------------------------------
class TestTailSampling:
    def test_legacy_mode_is_unchanged(self, tracer):
        tracer.enable()
        engine = _engine()
        _window(engine)
        root = tracer.recent()[-1]
        assert root["name"] == "window"
        assert "trace_id" not in root and "sampled" not in root

    def test_sampled_root_carries_ids_and_detail(self, tracer):
        tracer.arm(1.0)
        engine = _engine()
        _window(engine)
        root = tracer.recent()[-1]
        assert len(root["trace_id"]) == dtrace.TRACE_ID_HEX
        assert len(root["span_id"]) == dtrace.SPAN_ID_HEX
        assert root["sampled"] is True
        assert root["spans"], "sampled trace must record child spans"

    def test_unsampled_skeleton_is_tail_discarded(self, tracer):
        tracer.arm(0.0)
        engine = _engine()
        before = tracer.stats()
        _window(engine)
        after = tracer.stats()
        assert after["finished"] == before["finished"] + 1
        assert after["tail_discarded"] == before["tail_discarded"] + 1
        assert after["buffered"] == before["buffered"]

    def test_unsampled_error_is_retained(self, tracer):
        tracer.arm(0.0)
        engine = _engine()
        before = tracer.stats()["buffered"]
        with pytest.raises(KeyError):
            engine.execute(parse_request({"op": "delete", "seg_id": 999999}))
        kept = tracer.recent()[-1]
        assert tracer.stats()["buffered"] == before + 1
        assert kept["sampled"] is False and "error" in kept
        # Unsampled error keeps the *skeleton*: no child detail.
        assert kept["spans"] == []

    def test_unsampled_slow_request_is_retained(self, tracer):
        tracer.arm(0.0, slow_ms=0.0)  # everything is "slow"
        engine = _engine()
        before = tracer.stats()["buffered"]
        _window(engine)
        kept = tracer.recent()[-1]
        assert tracer.stats()["buffered"] == before + 1
        assert kept["retained"] == "slow"

    def test_tail_discards_surface_in_prom_export(self, tracer):
        tracer.arm(0.0)
        engine = _engine()
        _window(engine)
        engine.sync_mirrored_counters()
        text = engine.registry.render_prom()
        assert "repro_trace_tail_discarded_total" in text
        assert "repro_trace_buffered" in text


# ----------------------------------------------------------------------
# v1 propagation through the threaded server
# ----------------------------------------------------------------------
class TestServerPropagation:
    @pytest.fixture()
    def server(self, tracer):
        tracer.arm(1.0)
        srv = MapServer(_engine())
        srv.start_background()
        yield srv
        srv.stop()

    def test_response_carries_fresh_trace_identity(self, server):
        resp = send_request(
            server.address, {"op": "window", "x1": 0, "y1": 0, "x2": 400, "y2": 400}
        )
        assert resp["ok"]
        tc = resp["tc"]
        assert len(tc["t"]) == dtrace.TRACE_ID_HEX
        assert tc["f"] & dtrace.FLAG_SAMPLED

    def test_incoming_context_parents_the_server_root(self, server):
        ctx = dtrace.TraceContext(dtrace.new_trace_id(), dtrace.new_span_id(), True)
        resp = send_request(
            server.address,
            {"op": "point", "x": 100, "y": 100, "tc": ctx.to_wire()},
        )
        assert resp["ok"]
        tc = resp["tc"]
        assert tc["t"] == ctx.trace_id
        # A remote sampled request ships its local subtree back.
        subtree = tc["span"]
        assert subtree["parent_id"] == ctx.span_id
        assert subtree["name"] == "point"

    def test_unsampled_context_suppresses_detail(self, server):
        ctx = dtrace.TraceContext(dtrace.new_trace_id(), dtrace.new_span_id(), False)
        resp = send_request(
            server.address,
            {"op": "point", "x": 100, "y": 100, "tc": ctx.to_wire()},
        )
        assert resp["ok"]
        tc = resp["tc"]
        assert tc["t"] == ctx.trace_id
        assert tc["f"] == 0
        assert "span" not in tc

    def test_malformed_context_degrades_to_untraced_identity(self, server):
        resp = send_request(
            server.address,
            {"op": "point", "x": 100, "y": 100, "tc": {"t": "bogus"}},
        )
        assert resp["ok"]  # the request itself must not fail
        # A fresh root was minted instead of inheriting the bad context.
        assert resp["tc"]["t"] != "bogus"

    def test_clock_op_reports_anchored_wall(self, server):
        resp = send_request(server.address, {"op": "clock"})
        assert resp["ok"]
        info = resp["result"]
        assert abs(info["wall_us"] / 1e6 - time.time()) < 60.0
        assert info["mono_us"] >= 0


# ----------------------------------------------------------------------
# Stitched cross-shard trees and the counter-parity oracle
# ----------------------------------------------------------------------
N_SHARDS = 3


@pytest.fixture(scope="module")
def shard_root(tmp_path_factory):
    root = tmp_path_factory.mktemp("dtrace-shards")
    map_data = generate_county("cecil", scale=0.01)
    init_shard_set(
        root, "R*", map_data=map_data, n_shards=N_SHARDS, page_size=2048
    )
    return root


class TestStitchedTraces:
    @pytest.fixture()
    def routed(self, shard_root, tracer):
        tracer.arm(1.0)
        with LocalShardSet(shard_root) as shards:
            router = ShardRouter(shard_root)
            router.start_background()
            try:
                yield router, shards
            finally:
                router.close()

    @staticmethod
    def _spans_named(rec, prefix):
        found = []

        def walk(r):
            if str(r.get("name", "")).startswith(prefix):
                found.append(r)
            for child in r.get("spans", ()):
                walk(child)

        walk(rec)
        return found

    def test_routed_query_returns_one_stitched_tree(self, routed):
        router, _shards = routed
        resp = send_request(
            router.address,
            {"op": "window", "x1": 0, "y1": 0, "x2": 10**6, "y2": 10**6},
        )
        assert resp["ok"]
        trace_id = resp["tc"]["t"]

        fetched = send_request(
            router.address, {"op": "trace", "trace_id": trace_id}
        )
        assert fetched["ok"]
        tree = fetched["result"]["trace"]
        assert tree is not None and tree["trace_id"] == trace_id
        assert tree["name"] == "window"
        # Router phases present ...
        assert self._spans_named(tree, "scatter")
        assert self._spans_named(tree, "merge")
        # ... and one wrapper per shard, each with the worker's subtree.
        wrappers = self._spans_named(tree, "shard:")
        assert len(wrappers) >= 2, "cross-shard query must span >= 2 workers"
        for wrapper in wrappers:
            assert wrapper["spans"], f"missing worker subtree in {wrapper['name']}"
            worker_root = wrapper["spans"][0]
            assert worker_root["trace_id"] == trace_id
            assert worker_root["name"] == "window"
        # The whole thing renders.
        rendered = format_trace_tree(tree)
        assert "scatter" in rendered and "shard:" in rendered

    def test_span_counters_match_engine_counters_to_the_unit(self, routed):
        """The acceptance oracle: per-shard span cost attribution equals
        the engine's own counters exactly."""
        router, shards = routed

        def shard_totals():
            stats = send_request(router.address, {"op": "stats"})["result"]
            return {
                sid: dict(entry["totals"])
                for sid, entry in stats["shards"].items()
            }

        before = shard_totals()
        resp = send_request(
            router.address,
            {
                "op": "window",
                "x1": 0,
                "y1": 0,
                "x2": 10**6,
                "y2": 10**6,
                "use_cache": False,
            },
        )
        assert resp["ok"]
        after = shard_totals()
        tree = send_request(
            router.address, {"op": "trace", "trace_id": resp["tc"]["t"]}
        )["result"]["trace"]
        wrappers = self._spans_named(tree, "shard:")
        assert wrappers
        for wrapper in wrappers:
            sid = wrapper["attrs"]["shard"]
            traverse = self._spans_named(wrapper, "traverse")
            assert traverse, f"no traverse span under {wrapper['name']}"
            attributed = traverse[0]["attrs"]["counters"]
            # The attribution covers every raw counter (plus reporting
            # aliases like disk_accesses); each must equal the engine's
            # own delta exactly.
            assert set(COUNTER_FIELDS) <= set(attributed)
            deltas = {
                name: after[sid][name] - before[sid][name]
                for name in attributed
            }
            assert attributed == deltas, f"span/counter mismatch on {sid}"

    def test_shard_wrapper_timestamps_are_skew_shifted(self, routed):
        router, _shards = routed
        resp = send_request(
            router.address,
            {"op": "window", "x1": 0, "y1": 0, "x2": 10**6, "y2": 10**6},
        )
        tree = send_request(
            router.address, {"op": "trace", "trace_id": resp["tc"]["t"]}
        )["result"]["trace"]
        for wrapper in self._spans_named(tree, "shard:"):
            assert wrapper["start_us"] >= 0
            for sub in wrapper["spans"]:
                # The worker subtree lands inside the router's timeline,
                # not at a raw worker-relative (or wall-clock) offset.
                assert -1e6 < sub["start_us"] < tree["dur_us"] + 1e6

    def test_stats_entries_name_their_shard(self, shard_root, tracer):
        tracer.arm(1.0, slow_ms=0.0)
        with LocalShardSet(shard_root, slow_ms=0.0):
            router = ShardRouter(shard_root)
            router.start_background()
            try:
                send_request(
                    router.address,
                    {"op": "window", "x1": 0, "y1": 0, "x2": 10**6, "y2": 10**6},
                )
                stats = send_request(router.address, {"op": "stats"})["result"]
            finally:
                router.close()
        labelled = [
            entry
            for shard_stats in stats["shards"].values()
            for entry in shard_stats["obs"]["slow_queries"]["entries"]
        ]
        assert labelled, "slow log should have recorded at threshold 0"
        assert all("shard" in entry for entry in labelled)
        assert {e["shard"] for e in labelled} <= set(stats["shards"])


# ----------------------------------------------------------------------
# Sampling profiler
# ----------------------------------------------------------------------
class TestProfiler:
    def test_run_collects_stacks(self):
        stop = threading.Event()

        def busy():
            while not stop.is_set():
                sum(range(500))

        worker = threading.Thread(target=busy, name="busy-worker", daemon=True)
        worker.start()
        try:
            profile = PROFILER.run(seconds=0.2, hz=200)
        finally:
            stop.set()
            worker.join()
        assert profile["samples"] > 0
        assert profile["stacks"]
        assert any("busy" in key for key in profile["stacks"])
        assert not PROFILER.enabled

    def test_op_attribution_prefixes_stacks(self):
        stop = threading.Event()

        def tagged():
            # Re-tag every iteration, the way the engine tags each
            # request: run() wipes the map on entry, so only tags set
            # while the sampler is live land in the profile.
            while not stop.is_set():
                PROFILER.set_op("window")
                try:
                    sum(range(500))
                finally:
                    PROFILER.clear_op()

        worker = threading.Thread(target=tagged, daemon=True)
        worker.start()
        try:
            profile = PROFILER.run(seconds=0.3, hz=200)
        finally:
            stop.set()
            worker.join()
        assert profile["samples"] > 0
        assert any(key.startswith("op:window;") for key in profile["stacks"])

    def test_engine_sets_op_for_profiler(self, tracer):
        engine = _engine()
        captured = []
        PROFILER.enabled = True  # pretend a run is active
        try:
            original = PROFILER.set_op

            def spy(op):
                captured.append(op)
                original(op)

            with mock.patch.object(PROFILER, "set_op", side_effect=spy):
                _window(engine)
        finally:
            PROFILER.enabled = False
            PROFILER.clear_op()
        assert "window" in captured

    def test_clamps_protect_the_server(self):
        profile = PROFILER.run(seconds=0.05, hz=10**9)
        assert profile["hz"] <= 997

    def test_merge_reroots_under_labels(self):
        parts = {
            "router": {
                "seconds": 0.2,
                "hz": 97,
                "samples": 3,
                "stacks": {"a;b": 3},
            },
            "shard:s0": {
                "seconds": 0.2,
                "hz": 97,
                "samples": 2,
                "stacks": {"a;b": 1, "c": 1},
            },
        }
        merged = merge_profiles(parts)
        assert merged["samples"] == 5
        assert merged["stacks"]["router;a;b"] == 3
        assert merged["stacks"]["shard:s0;c"] == 1
        assert merged["parts"] == ["router", "shard:s0"]
        text = collapsed_text(merged)
        assert text.splitlines()[0] == "router;a;b 3"


# ----------------------------------------------------------------------
# Thread-local handoff hygiene
# ----------------------------------------------------------------------
class TestHandoff:
    def test_set_incoming_clears_stale_outbound(self):
        dtrace.set_outbound({"t": "stale"})
        dtrace.set_incoming(None)
        assert dtrace.take_outbound() is None

    def test_take_is_destructive(self):
        ctx = dtrace.TraceContext.new_root(1.0)
        dtrace.set_incoming(ctx)
        assert dtrace.take_incoming() is ctx
        assert dtrace.take_incoming() is None
