"""The asyncio map server: negotiation, pipelining, admission, guards.

Wire-level behaviour is exercised over real loopback sockets against a
background server -- blocking sockets for v1 (any v1 client must work
unchanged), :class:`AsyncMapClient` for v2. Completion-order tests use a
gate backend whose dispatch blocks on a :class:`threading.Event`, so the
tests *control* which request finishes first instead of racing timers.
"""

import asyncio
import json
import socket
import threading
import time

import pytest

from repro.aio import (
    AsyncMapClient,
    AsyncMapServer,
    HEADER_BYTES,
    decode_header,
    decode_payload,
    encode_frame,
)
from repro.obs.metrics import MetricsRegistry
from repro.service import MapServer, QueryEngine, send_request

from tests.conftest import build_index, lattice_map


def _recv_frame(sock_file):
    header = sock_file.read(HEADER_BYTES)
    assert len(header) == HEADER_BYTES
    flags, length, request_id = decode_header(header)
    body = sock_file.read(length)
    assert len(body) == length
    return flags, request_id, decode_payload(body)


class GateBackend:
    """Dispatch blocks on a per-op event: tests pick the completion order."""

    store = None

    def __init__(self, gated=()):
        self.registry = MetricsRegistry()
        self.gates = {op: threading.Event() for op in gated}

    def open_conn(self, conn_id):
        return conn_id

    def dispatch(self, raw, state):
        gate = self.gates.get(raw.get("op"))
        if gate is not None:
            assert gate.wait(10.0), "test forgot to open a gate"
        return raw.get("op"), None, None

    def close(self):
        pass


@pytest.fixture()
def server():
    engine = QueryEngine(build_index("R*", lattice_map(n=8)))
    srv = AsyncMapServer(engine, executor_workers=2)
    srv.start_background()
    yield srv
    srv.stop()


@pytest.fixture()
def gated():
    backend = GateBackend(gated=("slow",))
    srv = AsyncMapServer(backend=backend, executor_workers=2)
    srv.start_background()
    yield srv, backend.gates["slow"]
    backend.gates["slow"].set()  # never leave an executor thread parked
    srv.stop()


class TestV1Compat:
    """A v1 client cannot tell the async server from the threaded one."""

    def test_ping(self, server):
        assert send_request(server.address, {"op": "ping"}) == {
            "ok": True,
            "result": "pong",
        }

    def test_point_window_nearest(self, server):
        r = send_request(server.address, {"op": "point", "x": 100, "y": 100})
        assert r["ok"] and isinstance(r["result"], list)
        r = send_request(
            server.address, {"op": "window", "x1": 0, "y1": 0, "x2": 400, "y2": 400}
        )
        assert r["ok"] and len(r["result"]) > 0
        r = send_request(
            server.address, {"op": "nearest", "x": 300, "y": 300, "k": 2}
        )
        assert r["ok"] and len(r["result"]) == 2

    def test_insert_delete_cycle(self, server):
        r = send_request(
            server.address, {"op": "insert", "x1": 5, "y1": 5, "x2": 30, "y2": 35}
        )
        assert r["ok"]
        seg_id = r["result"]
        assert seg_id in send_request(
            server.address, {"op": "point", "x": 5, "y": 5}
        )["result"]
        assert send_request(server.address, {"op": "delete", "seg_id": seg_id})["ok"]

    def test_malformed_line_answers_and_survives(self, server):
        with socket.create_connection(server.address, timeout=10) as sock:
            with sock.makefile("rwb") as fh:
                fh.write(b"this is not json\n")
                fh.flush()
                assert json.loads(fh.readline())["ok"] is False
                fh.write(b'{"op": "ping"}\n')
                fh.flush()
                assert json.loads(fh.readline())["result"] == "pong"

    def test_v1_pin_is_echoed(self, server):
        r = send_request(server.address, {"op": "ping", "v": 1})
        assert r == {"ok": True, "result": "pong", "v": 1}

    def test_unsupported_version_is_bad_args(self, server):
        for bad in (3, 0, True, "2"):
            r = send_request(server.address, {"op": "ping", "v": bad})
            assert r["ok"] is False, bad
            assert r["error"]["code"] == "bad_args", bad
            assert "v2" in r["error"]["message"]

    def test_sessions_attributed_per_connection(self, server):
        send_request(server.address, {"op": "point", "x": 60, "y": 60})
        stats = send_request(server.address, {"op": "stats"})["result"]
        assert any(s["name"].startswith("aconn-") for s in stats["sessions"])

    def test_v1_pipelining_two_lines_one_write(self, server):
        with socket.create_connection(server.address, timeout=10) as sock:
            with sock.makefile("rwb") as fh:
                fh.write(b'{"op": "ping"}\n{"op": "point", "x": 1, "y": 1}\n')
                fh.flush()
                assert json.loads(fh.readline())["result"] == "pong"
                assert json.loads(fh.readline())["ok"] is True

    def test_v1_responses_keep_arrival_order(self, gated):
        """v1 has no ids, so a slow first request must hold the fast one."""
        srv, gate = gated
        with socket.create_connection(srv.address, timeout=10) as sock:
            with sock.makefile("rwb") as fh:
                fh.write(b'{"op": "slow"}\n{"op": "fast"}\n')
                fh.flush()
                # "fast" finishes first on the executor; the ordered
                # writer may not release it until "slow" answers.
                threading.Timer(0.3, gate.set).start()
                assert json.loads(fh.readline())["result"] == "slow"
                assert json.loads(fh.readline())["result"] == "fast"


class TestNegotiation:
    def test_upgrade_ack_then_frames(self, server):
        with socket.create_connection(server.address, timeout=10) as sock:
            with sock.makefile("rwb") as fh:
                fh.write(b'{"op": "ping", "v": 2}\n')
                fh.flush()
                ack = json.loads(fh.readline())
                # The ack also advertises capabilities (trace-context
                # trailer support) for clients that care.
                assert ack == {
                    "ok": True,
                    "result": "pong",
                    "v": 2,
                    "features": {"tc": True},
                }
                # Every byte after the ack is v2 frames, both directions.
                fh.write(encode_frame(7, {"op": "point", "x": 100, "y": 100}))
                fh.flush()
                flags, request_id, payload = _recv_frame(fh)
                assert flags & 0x01  # response bit
                assert request_id == 7
                assert payload["ok"] is True

    def test_threaded_server_refuses_the_pin(self):
        engine = QueryEngine(build_index("R*", lattice_map(n=4)))
        srv = MapServer(engine)
        srv.start_background()
        try:
            r = send_request(srv.address, {"op": "ping", "v": 2})
            assert r["ok"] is False
            assert r["error"]["code"] == "bad_args"

            async def try_v2():
                with pytest.raises(ConnectionError):
                    await AsyncMapClient.connect(srv.address)

            asyncio.run(try_v2())
        finally:
            srv.shutdown()
            srv.server_close()

    def test_request_ids_echo_verbatim(self, server):
        async def main():
            client = await AsyncMapClient.connect(server.address)
            try:
                # Ids are correlated by the client; interleave odd ones.
                results = await asyncio.gather(
                    *[client.request({"op": "ping"}) for _ in range(5)]
                )
                assert all(r["result"] == "pong" for r in results)
            finally:
                await client.close()

        asyncio.run(main())

    def test_malformed_frame_payload_answers_by_id(self, server):
        with socket.create_connection(server.address, timeout=10) as sock:
            with sock.makefile("rwb") as fh:
                fh.write(b'{"op": "ping", "v": 2}\n')
                fh.flush()
                json.loads(fh.readline())
                from repro.aio.frames import FRAME_HEADER

                body = b"[1, 2, 3]"
                fh.write(FRAME_HEADER.pack(0, len(body), 99) + body)
                fh.flush()
                _flags, request_id, payload = _recv_frame(fh)
                assert request_id == 99
                assert payload["ok"] is False
                assert payload["error"]["code"] == "bad_args"


class TestPipelining:
    def test_out_of_order_completion(self, gated):
        """v2 responses leave at completion: fast overtakes gated slow."""
        srv, gate = gated

        async def main():
            client = await AsyncMapClient.connect(srv.address)
            try:
                slow = asyncio.ensure_future(client.request({"op": "slow"}))
                fast = await client.request({"op": "fast"})
                assert fast["result"] == "fast"
                assert not slow.done()  # still parked on the gate
                gate.set()
                assert (await slow)["result"] == "slow"
            finally:
                await client.close()

        asyncio.run(main())

    def test_many_in_flight_on_one_connection(self, server):
        async def main():
            client = await AsyncMapClient.connect(server.address)
            try:
                results = await asyncio.gather(
                    *[
                        client.request({"op": "point", "x": 50 * i, "y": 50 * i})
                        for i in range(32)
                    ]
                )
                assert all(r["ok"] for r in results)
            finally:
                await client.close()

        asyncio.run(main())


class TestAdmissionControl:
    def test_per_connection_cap(self):
        backend = GateBackend(gated=("slow",))
        srv = AsyncMapServer(
            backend=backend, executor_workers=2, max_inflight_per_conn=2
        )
        srv.start_background()
        gate = backend.gates["slow"]
        try:

            async def main():
                client = await AsyncMapClient.connect(srv.address)
                try:
                    first = asyncio.ensure_future(client.request({"op": "slow"}))
                    second = asyncio.ensure_future(client.request({"op": "slow"}))
                    await asyncio.sleep(0.2)  # both admitted, both parked
                    third = await client.request({"op": "fast"})
                    assert third["ok"] is False
                    assert third["error"]["code"] == "server_overloaded"
                    gate.set()
                    done = await asyncio.gather(first, second)
                    assert all(r["ok"] for r in done)
                finally:
                    await client.close()

            asyncio.run(main())
            overloaded = backend.registry.counter(
                "repro_server_overloaded_total"
            ).value
            assert overloaded >= 1
        finally:
            gate.set()
            srv.stop()

    def test_global_cap_spans_connections(self):
        backend = GateBackend(gated=("slow",))
        srv = AsyncMapServer(
            backend=backend, executor_workers=2, max_inflight_total=1
        )
        srv.start_background()
        gate = backend.gates["slow"]
        try:

            async def main():
                c1 = await AsyncMapClient.connect(srv.address)
                c2 = await AsyncMapClient.connect(srv.address)
                try:
                    held = asyncio.ensure_future(c1.request({"op": "slow"}))
                    await asyncio.sleep(0.2)
                    rejected = await c2.request({"op": "fast"})
                    assert rejected["error"]["code"] == "server_overloaded"
                    gate.set()
                    assert (await held)["ok"]
                    # Capacity freed: the same connection is served now.
                    assert (await c2.request({"op": "fast"}))["ok"]
                finally:
                    await c1.close()
                    await c2.close()

            asyncio.run(main())
        finally:
            gate.set()
            srv.stop()


class TestWireGuards:
    """Satellites: idle timeout and size caps, both servers, both framings."""

    def test_async_idle_timeout_closes_connection(self):
        engine = QueryEngine(build_index("R*", lattice_map(n=4)))
        srv = AsyncMapServer(engine, idle_timeout=0.3)
        srv.start_background()
        try:
            with socket.create_connection(srv.address, timeout=10) as sock:
                with sock.makefile("rwb") as fh:
                    fh.write(b'{"op": "ping"}\n')
                    fh.flush()
                    assert json.loads(fh.readline())["result"] == "pong"
                    start = time.monotonic()
                    assert fh.readline() == b""  # server closed on us
                    assert time.monotonic() - start < 5.0
            assert (
                engine.registry.counter("repro_server_idle_timeouts_total").value
                >= 1
            )
        finally:
            srv.stop()

    def test_threaded_idle_timeout_closes_connection(self):
        engine = QueryEngine(build_index("R*", lattice_map(n=4)))
        srv = MapServer(engine, idle_timeout=0.3)
        srv.start_background()
        try:
            with socket.create_connection(srv.address, timeout=10) as sock:
                with sock.makefile("rwb") as fh:
                    fh.write(b'{"op": "ping"}\n')
                    fh.flush()
                    assert json.loads(fh.readline())["result"] == "pong"
                    start = time.monotonic()
                    assert fh.readline() == b""
                    assert time.monotonic() - start < 5.0
        finally:
            srv.shutdown()
            srv.server_close()

    def test_async_oversized_v1_line(self):
        engine = QueryEngine(build_index("R*", lattice_map(n=4)))
        srv = AsyncMapServer(engine, max_line_bytes=512)
        srv.start_background()
        try:
            with socket.create_connection(srv.address, timeout=10) as sock:
                with sock.makefile("rwb") as fh:
                    fh.write(b'{"op": "ping", "junk": "' + b"x" * 2048 + b'"}\n')
                    fh.flush()
                    r = json.loads(fh.readline())
                    assert r["ok"] is False
                    assert r["error"]["code"] == "frame_too_large"
                    fh.write(b'{"op": "ping"}\n')  # stream survived the drain
                    fh.flush()
                    assert json.loads(fh.readline())["result"] == "pong"
        finally:
            srv.stop()

    def test_threaded_oversized_v1_line(self):
        engine = QueryEngine(build_index("R*", lattice_map(n=4)))
        srv = MapServer(engine, max_line_bytes=512)
        srv.start_background()
        try:
            with socket.create_connection(srv.address, timeout=10) as sock:
                with sock.makefile("rwb") as fh:
                    fh.write(b'{"op": "ping", "junk": "' + b"x" * 2048 + b'"}\n')
                    fh.flush()
                    r = json.loads(fh.readline())
                    assert r["ok"] is False
                    assert r["error"]["code"] == "frame_too_large"
                    fh.write(b'{"op": "ping"}\n')
                    fh.flush()
                    assert json.loads(fh.readline())["result"] == "pong"
        finally:
            srv.shutdown()
            srv.server_close()

    def test_oversized_v2_frame_answers_its_id(self):
        engine = QueryEngine(build_index("R*", lattice_map(n=4)))
        srv = AsyncMapServer(engine, max_frame_bytes=512)
        srv.start_background()
        try:
            with socket.create_connection(srv.address, timeout=10) as sock:
                with sock.makefile("rwb") as fh:
                    fh.write(b'{"op": "ping", "v": 2}\n')
                    fh.flush()
                    json.loads(fh.readline())
                    big = {"op": "ping", "junk": "x" * 2048}
                    fh.write(encode_frame(42, big))
                    fh.write(encode_frame(43, {"op": "ping"}))
                    fh.flush()
                    _f, request_id, payload = _recv_frame(fh)
                    assert request_id == 42
                    assert payload["error"]["code"] == "frame_too_large"
                    _f, request_id, payload = _recv_frame(fh)
                    assert request_id == 43  # pipelined frame behind survived
                    assert payload["result"] == "pong"
        finally:
            srv.stop()

    def test_torn_frames_close_without_killing_the_server(self, server):
        # EOF mid-header.
        with socket.create_connection(server.address, timeout=10) as sock:
            sock.sendall(b'{"op": "ping", "v": 2}\n')
            sock.recv(4096)
            sock.sendall(b"\x00\x05\x00")  # 3 of 13 header bytes
        # EOF mid-payload: header promises 100 bytes, sends 10.
        with socket.create_connection(server.address, timeout=10) as sock:
            sock.sendall(b'{"op": "ping", "v": 2}\n')
            sock.recv(4096)
            from repro.aio.frames import FRAME_HEADER

            sock.sendall(FRAME_HEADER.pack(0, 100, 5) + b"0123456789")
        # The server itself is fine: a fresh connection still answers.
        assert send_request(server.address, {"op": "ping"})["result"] == "pong"


class TestGroupCommit:
    def test_concurrent_mutations_share_fsyncs(self, tmp_path):
        from repro.wal import DurableStore

        index = build_index("R*", lattice_map(n=6))
        store = DurableStore.create(tmp_path / "store", index, group_commit=1)
        engine = QueryEngine(index, store=store)
        srv = AsyncMapServer(engine, executor_workers=4)
        srv.start_background()
        try:
            fsyncs_before = store.wal.stats()["fsyncs"]

            async def main():
                clients = [
                    await AsyncMapClient.connect(srv.address) for _ in range(4)
                ]
                try:
                    results = await asyncio.gather(
                        *[
                            c.request(
                                {
                                    "op": "insert",
                                    "x1": i,
                                    "y1": i,
                                    "x2": i + 2,
                                    "y2": i + 2,
                                }
                            )
                            for c in clients
                            for i in range(1, 6)
                        ]
                    )
                    assert all(r["ok"] for r in results)
                finally:
                    for c in clients:
                        await c.close()

            asyncio.run(main())
            mutations = 20
            fsyncs = store.wal.stats()["fsyncs"] - fsyncs_before
            # Group commit's whole point: strictly fewer fsyncs than acks.
            assert fsyncs < mutations
            gc = srv.stats()["group_commit"]
            assert gc["committed"] == mutations
            assert gc["max_batch"] >= 2
            assert gc["synced_lsn"] >= mutations
        finally:
            srv.stop()
            store.close()

    def test_commit_before_ack_survives_reopen(self, tmp_path):
        """Every acked mutation must be durable: reopen and re-query."""
        from repro.wal import DurableStore

        index = build_index("R*", lattice_map(n=4))
        store = DurableStore.create(tmp_path / "store", index, group_commit=1)
        engine = QueryEngine(index, store=store)
        srv = AsyncMapServer(engine)
        srv.start_background()
        try:

            async def main():
                client = await AsyncMapClient.connect(srv.address)
                try:
                    r = await client.request(
                        {"op": "insert", "x1": 3, "y1": 3, "x2": 9, "y2": 9}
                    )
                    assert r["ok"]
                    return r["result"]
                finally:
                    await client.close()

            seg_id = asyncio.run(main())
        finally:
            srv.stop()
            store.close()

        from repro.service.api import PointQuery

        store2 = DurableStore.open(tmp_path / "store")
        try:
            assert store2.last_lsn >= 1
            hits = QueryEngine(store2.index, store=store2).execute(
                PointQuery(3.0, 3.0)
            )
            assert seg_id in hits
        finally:
            store2.close()


class TestLifecycle:
    def test_stats_shape(self, server):
        stats = server.stats()
        assert stats["connections"] == 0
        assert stats["inflight"] == 0
        assert stats["queued"] == 0

    def test_stop_is_idempotent(self):
        engine = QueryEngine(build_index("R*", lattice_map(n=4)))
        srv = AsyncMapServer(engine)
        srv.start_background()
        srv.stop()
        srv.stop()  # second stop is a no-op, not an error
