"""Tests for the shard-set fsck (rules SH01..SH05)."""

import json
import os
import shutil

import pytest

from repro.analysis import check_shard_set, has_errors
from repro.data.counties import generate_county
from repro.service.api import parse_request
from repro.shard import ShardMap, catch_up_shard, init_shard_set
from repro.shard.worker import addr_path, open_shard


def codes(findings):
    return {f.rule for f in findings}


@pytest.fixture()
def shard_root(tmp_path):
    map_data = generate_county("cecil", scale=0.01)
    root = str(tmp_path / "shards")
    init_shard_set(root, "R+", map_data=map_data, n_shards=2, page_size=4096)
    return root


class TestCleanSet:
    def test_no_findings(self, shard_root):
        assert check_shard_set(shard_root) == []

    def test_shallow_pass_is_also_clean(self, shard_root):
        assert check_shard_set(shard_root, deep=False) == []


class TestDivergence:
    def test_sh03_after_partial_mutation(self, shard_root):
        smap = ShardMap.load(shard_root)
        lagging = smap.shards[1].shard_id
        _, engine = open_shard(shard_root, smap.shards[0].shard_id)
        engine.execute(
            parse_request(
                {"op": "insert", "x1": 10.0, "y1": 10.0, "x2": 20.0, "y2": 20.0}
            )
        )
        engine.store.close()
        findings = check_shard_set(shard_root)
        assert "SH03" in codes(findings)
        assert has_errors(findings)
        assert any(lagging in f.detail for f in findings)

    def test_catchup_clears_sh03(self, shard_root):
        smap = ShardMap.load(shard_root)
        _, engine = open_shard(shard_root, smap.shards[0].shard_id)
        engine.execute(
            parse_request(
                {"op": "insert", "x1": 10.0, "y1": 10.0, "x2": 20.0, "y2": 20.0}
            )
        )
        engine.store.close()
        catch_up_shard(shard_root, smap.shards[1].shard_id)
        assert check_shard_set(shard_root) == []


class TestStaleAddress:
    def test_sh05_for_dead_pid(self, shard_root):
        smap = ShardMap.load(shard_root)
        store_root = smap.store_path(shard_root, smap.shards[0].shard_id)
        with open(addr_path(store_root), "w", encoding="utf-8") as fh:
            json.dump(
                {"host": "127.0.0.1", "port": 1, "pid": 2**22 - 1}, fh
            )
        findings = check_shard_set(shard_root, deep=False)
        assert "SH05" in codes(findings)
        # A stale address is a warning, never an error: workers rewrite
        # the file on start.
        assert not has_errors(findings)

    def test_live_pid_is_not_flagged(self, shard_root):
        smap = ShardMap.load(shard_root)
        store_root = smap.store_path(shard_root, smap.shards[0].shard_id)
        with open(addr_path(store_root), "w", encoding="utf-8") as fh:
            json.dump(
                {"host": "127.0.0.1", "port": 1, "pid": os.getpid()}, fh
            )
        assert check_shard_set(shard_root, deep=False) == []

    def test_unreadable_addr_file_warns(self, shard_root):
        smap = ShardMap.load(shard_root)
        store_root = smap.store_path(shard_root, smap.shards[0].shard_id)
        with open(addr_path(store_root), "w", encoding="utf-8") as fh:
            fh.write("{nope")
        findings = check_shard_set(shard_root, deep=False)
        assert "SH05" in codes(findings)
        assert not has_errors(findings)


class TestStructuralDamage:
    def test_sh02_for_missing_store(self, shard_root):
        smap = ShardMap.load(shard_root)
        shutil.rmtree(smap.store_path(shard_root, smap.shards[1].shard_id))
        findings = check_shard_set(shard_root)
        assert "SH02" in codes(findings)
        assert has_errors(findings)

    def test_sh01_for_missing_manifest(self, shard_root):
        os.remove(ShardMap.path(shard_root))
        findings = check_shard_set(shard_root)
        assert codes(findings) == {"SH01"}

    def test_sh01_for_corrupt_manifest(self, shard_root):
        with open(ShardMap.path(shard_root), "w", encoding="utf-8") as fh:
            fh.write("{nope")
        findings = check_shard_set(shard_root)
        assert codes(findings) == {"SH01"}
        assert has_errors(findings)
