"""Tests for map statistics and the full-report generator."""

import pytest

from repro.data import generate_county
from repro.data.generator import MapData
from repro.data.stats import map_statistics
from repro.geometry import Segment
from repro.harness.report import full_report


class TestMapStatistics:
    @pytest.fixture(scope="class")
    def stats(self):
        return map_statistics(generate_county("baltimore", scale=0.02))

    def test_counts(self, stats):
        assert stats.segments > 800
        assert stats.vertices > 400

    def test_degree_histogram_sums_to_vertices(self, stats):
        assert sum(stats.degree_histogram.values()) == stats.vertices
        assert max(stats.degree_histogram) <= 8

    def test_lengths_ordered(self, stats):
        assert 0 < stats.length_min <= stats.length_mean <= stats.length_max

    def test_density_quartiles_sum_to_one(self, stats):
        assert sum(stats.density_quartile_share) == pytest.approx(1.0)
        # The densest quartile of cells holds a disproportionate share.
        assert stats.density_quartile_share[-1] > 0.25

    def test_planar_flag(self, stats):
        assert stats.planar

    def test_broken_map_flagged(self):
        m = MapData(
            "broken",
            [Segment(0, 0, 100, 100), Segment(0, 100, 100, 0)],
            world_size=1024,
        )
        assert not map_statistics(m).planar

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            map_statistics(MapData("empty", [], world_size=1024))

    def test_str_rendering(self, stats):
        text = str(stats)
        assert "baltimore" in text and "degrees" in text


class TestFullReport:
    def test_report_contains_everything(self, tmp_path):
        out = tmp_path / "report.md"
        text = full_report(
            scale=0.01, n_queries=5, counties=["cecil", "charles"], out_path=out
        )
        assert out.exists()
        assert out.read_text() == text
        for marker in (
            "Table 1",
            "Table 2",
            "Figure 7",
            "Figure 8",
            "Figure 9",
            "Figure 6",
            "Occupancy",
            "charles",
        ):
            assert marker in text, marker

    def test_cli_report(self, capsys, tmp_path):
        from repro.__main__ import main

        out = tmp_path / "r.md"
        rc = main(
            [
                "report",
                "--scale",
                "0.01",
                "--queries",
                "5",
                "--out",
                str(out),
            ]
        )
        assert rc == 0
        assert out.exists()
        assert "Table 1" in out.read_text()
