"""Differential fuzzing: every structure, same operations, same answers.

One hypothesis-driven test executes a random interleaving of inserts,
deletes, and all five queries against *all* structures at once (each with
its own storage stack) and a brute-force reference. Any divergence --
wrong results, violated invariants, crashes -- falsifies with a minimal
operation sequence.
"""

from __future__ import annotations

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.queries import (
    enclosing_polygon,
    nearest_segment,
    segments_at_point,
    window_query,
)
from repro.geometry import Point, Rect
from repro.storage import StorageContext

from tests.conftest import (
    ALL_STRUCTURES,
    TEST_WORLD,
    make_index,
    random_planar_segments,
)


@settings(deadline=None, max_examples=12)
@given(st.integers(0, 100_000))
def test_differential_operations(seed):
    rng = random.Random(seed)
    segments = random_planar_segments(rng, n_cells=5)

    # One shared segment-table content, one stack per structure.
    stacks = {}
    for kind in ALL_STRUCTURES:
        ctx = StorageContext.create()
        idx = make_index(kind, ctx)
        ids = ctx.load_segments(segments)
        stacks[kind] = (idx, ids)

    alive: set = set()
    pending = list(range(len(segments)))
    rng.shuffle(pending)

    def check_agreement():
        # Q1 at a random endpoint of a live segment.
        if alive:
            victim = rng.choice(sorted(alive))
            p = segments[victim].start
            expected = {
                i for i in alive if segments[i].has_endpoint(p)
            }
            for kind, (idx, ids) in stacks.items():
                got = set(segments_at_point(idx, p))
                assert got == {ids[i] for i in expected}, (kind, p)

        # Q5 over a random window.
        x, y = rng.randint(0, 800), rng.randint(0, 800)
        w = Rect(x, y, x + rng.randint(20, 220), y + rng.randint(20, 220))
        expected_w = {
            i for i in alive if segments[i].intersects_rect(w)
        }
        for kind, (idx, ids) in stacks.items():
            got = set(window_query(idx, w))
            assert got == {ids[i] for i in expected_w}, (kind, w)

        # Q3 from a random point.
        if alive:
            q = Point(rng.randint(0, TEST_WORLD - 1), rng.randint(0, TEST_WORLD - 1))
            best = min(segments[i].distance2_to_point(q) for i in alive)
            for kind, (idx, ids) in stacks.items():
                sid, d2 = nearest_segment(idx, q)
                assert d2 == pytest.approx(best), (kind, q)

    ops = 0
    while pending or (alive and ops < 60):
        ops += 1
        roll = rng.random()
        if pending and (roll < 0.6 or not alive):
            i = pending.pop()
            for kind, (idx, ids) in stacks.items():
                idx.insert(ids[i])
            alive.add(i)
        elif alive and roll < 0.8:
            i = rng.choice(sorted(alive))
            for kind, (idx, ids) in stacks.items():
                idx.delete(ids[i])
            alive.discard(i)
        else:
            check_agreement()

    check_agreement()
    for kind, (idx, _) in stacks.items():
        idx.check_invariants()


@settings(deadline=None, max_examples=6)
@given(st.integers(0, 100_000))
def test_differential_polygon_walks(seed):
    """The polygon walk must agree across structures on full maps."""
    rng = random.Random(seed)
    segments = random_planar_segments(rng, n_cells=5)
    stacks = {}
    for kind in ALL_STRUCTURES:
        ctx = StorageContext.create()
        idx = make_index(kind, ctx)
        for sid in ctx.load_segments(segments):
            idx.insert(sid)
        stacks[kind] = idx

    for _ in range(3):
        p = Point(rng.randint(100, 900), rng.randint(100, 900))
        outcomes = set()
        for kind, idx in stacks.items():
            r = enclosing_polygon(idx, p)
            outcomes.add((frozenset(r.seg_ids), r.is_outer, r.size))
        assert len(outcomes) == 1, (p, outcomes)
