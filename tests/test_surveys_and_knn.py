"""Tests for the k-nearest API and the polygon-size survey."""

import random

import pytest

from repro.core.queries import nearest_k_segments
from repro.data import generate_county
from repro.geometry import Point
from repro.harness import polygon_size_survey
from repro.harness.experiment import build_structure

from tests.conftest import (
    ALL_STRUCTURES,
    build_index,
    oracle_nearest_dist2,
    random_planar_segments,
)


class TestNearestK:
    def test_matches_brute_force_order(self, any_structure):
        rng = random.Random(71)
        segs = random_planar_segments(rng)
        idx = build_index(any_structure, segs)
        p = Point(400, 650)
        k = min(8, len(segs))
        got = nearest_k_segments(idx, p, k)
        brute = sorted(
            ((s.distance2_to_point(p), i) for i, s in enumerate(segs))
        )[:k]
        assert [d for _, d in got] == pytest.approx([d for d, _ in brute])

    def test_k_larger_than_index(self, any_structure):
        segs = random_planar_segments(random.Random(72), n_cells=3)
        idx = build_index(any_structure, segs)
        got = nearest_k_segments(idx, Point(10, 10), k=10_000)
        assert len(got) == len(segs)

    def test_k_validation(self):
        segs = random_planar_segments(random.Random(73), n_cells=3)
        idx = build_index("PMR", segs)
        with pytest.raises(ValueError):
            nearest_k_segments(idx, Point(0, 0), k=0)

    def test_first_of_k_is_the_nearest(self, any_structure):
        rng = random.Random(74)
        segs = random_planar_segments(rng)
        idx = build_index(any_structure, segs)
        p = Point(512, 512)
        got = nearest_k_segments(idx, p, 3)
        assert got[0][1] == pytest.approx(oracle_nearest_dist2(segs, p))
        dists = [d for _, d in got]
        assert dists == sorted(dists)


class TestPolygonSurvey:
    @pytest.fixture(scope="class")
    def charles(self):
        return generate_county("charles", scale=0.02)

    def test_survey_runs(self, charles):
        survey = polygon_size_survey(charles, samples=15)
        assert survey.county == "charles"
        assert survey.samples == 15
        assert survey.closed_inner_faces + survey.outer_face_hits <= 15
        if survey.closed_inner_faces:
            assert survey.average_size > 2
            assert survey.max_size >= survey.average_size

    def test_survey_deterministic(self, charles):
        built = build_structure("PMR", charles)
        a = polygon_size_survey(charles, samples=10, seed=5, built=built)
        b = polygon_size_survey(charles, samples=10, seed=5, built=built)
        assert a == b

    def test_survey_reuses_prebuilt(self, charles):
        built = build_structure("PMR", charles)
        survey = polygon_size_survey(charles, samples=10, built=built)
        assert survey.closed_inner_faces >= 0
