"""The lock-discipline pass: every CC rule fires, and src/ stays clean.

Each rule gets a minimal synthetic violation (asserting the exact rule
id and line) plus a near-miss counterexample that must stay clean --
the value of a concurrency linter is zero only if its rules are sharp
enough to not cry wolf on the sanctioned patterns.
"""

from __future__ import annotations

import textwrap

from repro.analysis.concurrency import (
    CC01,
    CC02,
    CC03,
    CC04,
    CC05,
    lint_concurrency_source,
    lint_concurrency_sources,
)

PATH = "src/repro/fake/mod.py"


def lint(src: str, path: str = PATH):
    return lint_concurrency_source(textwrap.dedent(src), path)


def rules_of(findings):
    return {f.rule for f in findings}


# ----------------------------------------------------------------------
# CC01: lock-order inversion
# ----------------------------------------------------------------------
AB_BA = """
    import threading

    class Pair:
        def __init__(self):
            self._a_lock = threading.Lock()
            self._b_lock = threading.Lock()

        def ab(self):
            with self._a_lock:
                with self._b_lock:
                    pass

        def ba(self):
            with self._b_lock:
                with self._a_lock:
                    pass
"""


def test_cc01_ab_ba_inversion():
    findings = lint(AB_BA)
    assert [f.rule for f in findings] == [CC01]
    # Reported once (one cycle), anchored at an edge inside a method.
    assert findings[0].page_id in (11, 16)
    assert "Pair._a_lock" in findings[0].detail
    assert "Pair._b_lock" in findings[0].detail


def test_cc01_interprocedural_inversion():
    # ab() nests directly; ba() holds B and *calls* a helper that takes
    # A. The cycle only exists through the call graph.
    findings = lint(
        """
        import threading

        class Pair:
            def __init__(self):
                self._a_lock = threading.Lock()
                self._b_lock = threading.Lock()

            def ab(self):
                with self._a_lock:
                    with self._b_lock:
                        pass

            def ba(self):
                with self._b_lock:
                    self.take_a()

            def take_a(self):
                with self._a_lock:
                    pass
        """
    )
    assert rules_of(findings) == {CC01}


def test_cc01_consistent_order_is_clean():
    # Same two locks, always A before B: a total order, no cycle.
    assert (
        lint(
            """
            import threading

            class Pair:
                def __init__(self):
                    self._a_lock = threading.Lock()
                    self._b_lock = threading.Lock()

                def ab(self):
                    with self._a_lock:
                        with self._b_lock:
                            pass

                def ab_again(self):
                    with self._a_lock:
                        with self._b_lock:
                            pass
            """
        )
        == []
    )


# ----------------------------------------------------------------------
# CC02: blocking call under a lock
# ----------------------------------------------------------------------
def test_cc02_fsync_under_lock():
    findings = lint(
        """
        import os, threading

        class Store:
            def __init__(self):
                self._lock = threading.Lock()
                self._fh = open("x", "wb")

            def flush(self):
                with self._lock:
                    os.fsync(self._fh.fileno())
        """
    )
    assert [f.rule for f in findings] == [CC02]
    assert findings[0].page_id == 11
    assert "Store._lock" in findings[0].detail


def test_cc02_interprocedural_fsync():
    # The fsync lives in a helper; the lock is held by the caller. The
    # entry-lockset inference must connect them.
    findings = lint(
        """
        import os, threading

        class Store:
            def __init__(self):
                self._lock = threading.Lock()
                self._fh = open("x", "wb")

            def flush(self):
                with self._lock:
                    self._sync()

            def _sync(self):
                os.fsync(self._fh.fileno())
        """
    )
    assert [f.rule for f in findings] == [CC02]
    assert findings[0].page_id == 14  # the fsync line, not the call site


def test_cc02_socket_send_under_lock():
    findings = lint(
        """
        import threading

        class Client:
            def __init__(self, sock):
                self._lock = threading.Lock()
                self._sock = sock

            def send(self, data):
                with self._lock:
                    self._sock.sendall(data)
        """
    )
    assert rules_of(findings) == {CC02}


def test_cc02_fsync_outside_lock_is_clean():
    assert (
        lint(
            """
            import os, threading

            class Store:
                def __init__(self):
                    self._lock = threading.Lock()
                    self._fh = open("x", "wb")

                def flush(self):
                    with self._lock:
                        data = self._drain()
                    os.fsync(self._fh.fileno())
            """
        )
        == []
    )


# ----------------------------------------------------------------------
# CC03: field mutated outside the class's lock
# ----------------------------------------------------------------------
def test_cc03_mutation_outside_lock():
    findings = lint(
        """
        import threading

        class Box:
            def __init__(self):
                self._lock = threading.Lock()
                self.value = 0

            def bump(self):
                with self._lock:
                    self.value += 1

            def reset(self):
                self.value = 0
        """
    )
    assert [f.rule for f in findings] == [CC03]
    assert findings[0].page_id == 14  # the unprotected write in reset()
    assert "self.value" in findings[0].detail


def test_cc03_all_writes_locked_is_clean():
    assert (
        lint(
            """
            import threading

            class Box:
                def __init__(self):
                    self._lock = threading.Lock()
                    self.value = 0

                def bump(self):
                    with self._lock:
                        self.value += 1

                def reset(self):
                    with self._lock:
                        self.value = 0
            """
        )
        == []
    )


def test_cc03_single_writer_method_is_clean():
    # Only one method (besides __init__) writes the field: no cross-
    # method race to report, even though the write is unlocked.
    assert (
        lint(
            """
            import threading

            class Box:
                def __init__(self):
                    self._lock = threading.Lock()
                    self.value = 0

                def reset(self):
                    self.value = 0

                def read(self):
                    with self._lock:
                        return self.value
            """
        )
        == []
    )


# ----------------------------------------------------------------------
# CC04: manual acquire/release
# ----------------------------------------------------------------------
def test_cc04_leaked_acquire_and_bare_release():
    findings = lint(
        """
        import threading

        _io_lock = threading.Lock()

        def leaky():
            _io_lock.acquire()
            do_stuff()
            _io_lock.release()
        """
    )
    assert [f.rule for f in findings] == [CC04, CC04]
    assert [f.page_id for f in findings] == [7, 9]


def test_cc04_release_in_finally_still_flags_acquire_only():
    findings = lint(
        """
        import threading

        _io_lock = threading.Lock()

        def careful():
            _io_lock.acquire()
            try:
                do_stuff()
            finally:
                _io_lock.release()
        """
    )
    # The release is sanctioned (finally); the bare acquire still is
    # not -- `with` is strictly safer and is what the codebase uses.
    assert [f.rule for f in findings] == [CC04]
    assert findings[0].page_id == 7


def test_cc04_with_block_is_clean():
    assert (
        lint(
            """
            import threading

            _io_lock = threading.Lock()

            def fine():
                with _io_lock:
                    do_stuff()
            """
        )
        == []
    )


# ----------------------------------------------------------------------
# CC05: unowned threads
# ----------------------------------------------------------------------
def test_cc05_unowned_thread():
    findings = lint(
        """
        import threading

        def spawn():
            t = threading.Thread(target=work)
            t.start()
            return t
        """
    )
    assert [f.rule for f in findings] == [CC05]
    assert findings[0].page_id == 5


def test_cc05_daemon_thread_is_clean():
    assert (
        lint(
            """
            import threading

            def spawn():
                t = threading.Thread(target=work, daemon=True)
                t.start()
                return t
            """
        )
        == []
    )


def test_cc05_joined_thread_is_clean():
    assert (
        lint(
            """
            import threading

            def run():
                t = threading.Thread(target=work)
                t.start()
                t.join()
            """
        )
        == []
    )


def test_cc05_join_elsewhere_in_class_is_clean():
    # Start in one method, join in another (the server/loadgen shape).
    assert (
        lint(
            """
            import threading

            class Owner:
                def start(self):
                    self._thread = threading.Thread(target=work)
                    self._thread.start()

                def stop(self):
                    self._thread.join()
            """
        )
        == []
    )


# ----------------------------------------------------------------------
# Suppression discipline
# ----------------------------------------------------------------------
def test_justified_pragma_suppresses():
    findings = lint(
        """
        import os, threading

        class Store:
            def __init__(self):
                self._lock = threading.Lock()
                self._fh = open("x", "wb")

            def flush(self):
                with self._lock:
                    os.fsync(self._fh.fileno())  # repro-lint: disable=CC02 -- group commit rides this fsync
        """
    )
    assert findings == []


def test_unjustified_pragma_is_reported():
    findings = lint(
        """
        import os, threading

        class Store:
            def __init__(self):
                self._lock = threading.Lock()
                self._fh = open("x", "wb")

            def flush(self):
                with self._lock:
                    os.fsync(self._fh.fileno())  # repro-lint: disable=CC02
        """
    )
    # The pragma without a justification is itself a finding (RP00) and
    # does NOT suppress the CC02 underneath.
    assert rules_of(findings) == {"RP00", CC02}


# ----------------------------------------------------------------------
# Whole-program behavior
# ----------------------------------------------------------------------
def test_cross_file_analysis_sees_one_program():
    # The inversion spans two files: each is clean alone, the program
    # is not.
    a = textwrap.dedent(
        """
        import threading

        class Pair:
            def __init__(self):
                self._a_lock = threading.Lock()
                self._b_lock = threading.Lock()

            def ab(self):
                with self._a_lock:
                    with self._b_lock:
                        pass
        """
    )
    b = textwrap.dedent(
        """
        def cross(pair):
            with pair._b_lock:
                with pair._a_lock:
                    pass
        """
    )
    assert lint_concurrency_sources({"src/a.py": a}) == []
    assert lint_concurrency_sources({"src/b.py": b}) == []
    both = lint_concurrency_sources({"src/a.py": a, "src/b.py": b})
    assert rules_of(both) == {CC01}


def test_syntax_error_is_reported_not_raised():
    findings = lint("def broken(:\n")
    assert rules_of(findings) == {"RP00"}


def test_cli_concurrency_flag(tmp_path, capsys):
    from repro.__main__ import main

    dirty = tmp_path / "dirty.py"
    dirty.write_text(
        textwrap.dedent(
            """
            import threading

            _lock = threading.Lock()

            def leaky():
                _lock.acquire()
            """
        )
    )
    assert main(["lint", "--concurrency", str(dirty)]) == 1
    assert "CC04" in capsys.readouterr().out

    clean = tmp_path / "clean.py"
    clean.write_text("x = 1\n")
    assert main(["lint", "--concurrency", str(clean)]) == 0
    out = capsys.readouterr().out
    assert "clean: 0 findings" in out
