"""Golden wire-protocol tests: every op, success and error envelope,
typed-request parsing, and trace/metrics observability under load."""

import threading

import pytest

from repro.errors import NotDurableError, ProtocolError
from repro.obs import TRACER, MetricsRegistry
from repro.service import MapServer, QueryEngine, send_request
from repro.service.api import (
    PROTOCOL_VERSION,
    NearestQuery,
    PointQuery,
    WindowQuery,
    parse_batch_item,
    parse_request,
)

from tests.conftest import build_index, lattice_map


@pytest.fixture()
def engine():
    eng = QueryEngine(
        build_index("R*", lattice_map(n=8)), registry=MetricsRegistry()
    )
    yield eng


@pytest.fixture()
def server(engine):
    srv = MapServer(engine)
    srv.start_background()
    yield srv
    srv.shutdown()
    srv.server_close()


class TestTypedRequests:
    def test_point_cache_key_matches_legacy(self):
        assert PointQuery(1, 2).cache_key() == ("point", 1.0, 2.0)

    def test_window_canonicalizes_corners(self):
        q = WindowQuery(10, 20, 0, 5)
        assert (q.x1, q.y1, q.x2, q.y2) == (0.0, 5.0, 10.0, 20.0)
        assert q.cache_key() == ("window", 0.0, 5.0, 10.0, 20.0, "intersects")
        # The same window given either way round shares one cache entry.
        assert WindowQuery(0, 5, 10, 20).cache_key() == q.cache_key()

    def test_nearest_cache_key(self):
        assert NearestQuery(3, 4, k=2).cache_key() == ("nearest", 3.0, 4.0, 2)

    def test_validation_raises_protocol_error(self):
        with pytest.raises(ProtocolError):
            PointQuery("a", 0)
        with pytest.raises(ProtocolError):
            WindowQuery(0, 0, 1, 1, mode="overlaps")
        with pytest.raises(ProtocolError):
            NearestQuery(0, 0, k=0)
        with pytest.raises(ProtocolError):
            NearestQuery(0, 0, k=True)

    def test_parse_request_every_op(self):
        cases = [
            ({"op": "point", "x": 1, "y": 2}, "point"),
            ({"op": "window", "x1": 0, "y1": 0, "x2": 9, "y2": 9}, "window"),
            ({"op": "nearest", "x": 1, "y": 2, "k": 3}, "nearest"),
            ({"op": "batch", "requests": []}, "batch"),
            ({"op": "insert", "x1": 0, "y1": 0, "x2": 1, "y2": 1}, "insert"),
            ({"op": "delete", "seg_id": 4}, "delete"),
            ({"op": "checkpoint"}, "checkpoint"),
            ({"op": "stats"}, "stats"),
            ({"op": "check"}, "check"),
            ({"op": "trace", "n": 2}, "trace"),
            ({"op": "metrics", "format": "prom"}, "metrics"),
        ]
        for raw, op in cases:
            assert type(parse_request(raw)).OP == op

    def test_parse_request_unknown_op_code(self):
        with pytest.raises(ProtocolError) as exc_info:
            parse_request({"op": "bogus"})
        assert exc_info.value.code == "unknown_op"

    def test_parse_batch_item_restricts_ops(self):
        with pytest.raises(ProtocolError, match="batch cannot execute"):
            parse_batch_item({"op": "stats"})
        item = parse_batch_item({"op": "point", "x": 1, "y": 2}, use_cache=False)
        assert item.use_cache is False

    def test_execute_rejects_untyped_values(self, engine):
        with pytest.raises(ProtocolError, match="not a typed request"):
            engine.execute({"op": "point", "x": 1, "y": 2})


class TestGoldenProtocol:
    """One success and (where reachable) one failure per wire op."""

    def test_every_op_succeeds(self, server):
        addr = server.address
        ok_cases = [
            {"op": "ping"},
            {"op": "point", "x": 100, "y": 100},
            {"op": "window", "x1": 0, "y1": 0, "x2": 300, "y2": 300},
            {"op": "nearest", "x": 250, "y": 250, "k": 2},
            {
                "op": "batch",
                "requests": [
                    {"op": "point", "x": 100, "y": 100},
                    {"op": "window", "x1": 0, "y1": 0, "x2": 150, "y2": 150},
                ],
            },
            {"op": "insert", "x1": 3, "y1": 3, "x2": 8, "y2": 8},
            {"op": "delete", "seg_id": 0},
            {"op": "stats"},
            {"op": "check"},
            {"op": "trace"},
            {"op": "metrics"},
            {"op": "metrics", "format": "prom"},
        ]
        for request in ok_cases:
            response = send_request(addr, request)
            assert response["ok"] is True, (request, response)
            assert "result" in response

    def test_error_envelopes(self, server):
        addr = server.address
        error_cases = [
            ({"op": "bogus"}, "unknown_op"),
            ({"op": "point", "x": 1}, "bad_args"),
            ({"op": "point", "x": "a", "y": 2}, "bad_args"),
            ({"op": "window", "x1": 0, "y1": 0, "x2": 1, "y2": 1,
              "mode": "overlaps"}, "bad_args"),
            ({"op": "nearest", "x": 1, "y": 2, "k": 0}, "bad_args"),
            ({"op": "batch", "requests": [{"op": "stats"}]}, "bad_args"),
            ({"op": "batch", "requests": "nope"}, "bad_args"),
            ({"op": "insert", "x1": 0, "y1": 0, "x2": 1}, "bad_args"),
            ({"op": "delete", "seg_id": 10**9}, "unknown_seg"),
            ({"op": "delete", "seg_id": "x"}, "bad_args"),
            ({"op": "checkpoint"}, "not_durable"),
            ({"op": "trace", "n": 0}, "bad_args"),
            ({"op": "metrics", "format": "xml"}, "bad_args"),
            ({"op": "ping", "v": 99}, "bad_args"),
        ]
        for request, code in error_cases:
            response = send_request(addr, request)
            assert response["ok"] is False, (request, response)
            error = response["error"]
            assert error["code"] == code, (request, error)
            assert error["message"]
            assert error["type"]

    def test_version_echo(self, server):
        addr = server.address
        response = send_request(addr, {"op": "ping", "v": PROTOCOL_VERSION})
        assert response == {"ok": True, "result": "pong", "v": PROTOCOL_VERSION}
        # Unpinned requests get no version key, as before this protocol rev.
        assert "v" not in send_request(addr, {"op": "ping"})
        # A pinned request that fails still echoes the accepted version.
        response = send_request(addr, {"op": "bogus", "v": PROTOCOL_VERSION})
        assert response["v"] == PROTOCOL_VERSION
        assert response["error"]["code"] == "unknown_op"

    def test_not_durable_is_runtime_and_protocol_error(self, engine):
        # The compat contract: existing `except RuntimeError` call sites
        # keep working, while the server maps the code in one place.
        with pytest.raises(RuntimeError, match="durable"):
            engine.checkpoint()
        with pytest.raises(NotDurableError) as exc_info:
            engine.checkpoint()
        assert exc_info.value.code == "not_durable"


@pytest.mark.parametrize("kind", ["R*", "R+", "PMR"])
class TestTraceShapes:
    def test_window_trace_spans(self, kind):
        engine = QueryEngine(
            build_index(kind, lattice_map(n=8)), registry=MetricsRegistry()
        )
        TRACER.enable()
        try:
            TRACER.clear()
            engine.cold_start()
            engine.window(0, 0, 300, 300, use_cache=False)
            engine.window(0, 0, 300, 300)
            traces = TRACER.recent()
        finally:
            TRACER.disable()
        assert len(traces) == 2
        trace = traces[0]
        assert trace["name"] == "window"
        assert trace["attrs"]["mode"] == "intersects"
        (traverse,) = trace["spans"]
        assert traverse["name"] == "traverse"
        names = {s["name"] for s in traverse["spans"]}
        # A cold traversal must fault pages and read the segment table.
        assert "page_fetch" in names
        assert "segment_read" in names
        outcomes = {
            s["attrs"]["outcome"]
            for s in traverse["spans"]
            if s["name"] == "page_fetch"
        }
        assert "miss" in outcomes

    def test_cache_hit_event(self, kind):
        engine = QueryEngine(
            build_index(kind, lattice_map(n=6)), registry=MetricsRegistry()
        )
        TRACER.enable()
        try:
            TRACER.clear()
            engine.point(100, 100)
            engine.point(100, 100)
            traces = TRACER.recent()
        finally:
            TRACER.disable()
        first, second = traces[-2:]
        flat_first = [s["name"] for s in first["spans"]]
        flat_second = [s["name"] for s in second["spans"]]
        assert "cache_miss" in flat_first
        assert flat_second == ["cache_hit"]  # no traversal on a hit


class TestObservedEngine:
    def test_histogram_total_matches_query_total(self, engine):
        engine.point(100, 100)
        engine.window(0, 0, 200, 200)
        engine.window(0, 0, 200, 200)
        engine.nearest(300, 300, k=1)
        reg = engine.registry
        for op, expected in (("point", 1), ("window", 2), ("nearest", 1)):
            hist = reg.histogram("repro_op_latency_seconds", op=op)
            assert hist.raw()[1] == expected
            counter = reg.counter("repro_queries_total", op=op, status="ok")
            assert counter.value == expected

    def test_errors_counted_with_status_label(self, engine):
        with pytest.raises(KeyError):
            engine.delete(10**9)
        reg = engine.registry
        assert reg.counter(
            "repro_queries_total", op="delete", status="error"
        ).value == 1
        assert reg.histogram(
            "repro_op_latency_seconds", op="delete"
        ).raw()[1] == 1

    def test_batch_members_become_child_spans(self, engine):
        TRACER.enable()
        try:
            TRACER.clear()
            engine.execute(
                parse_request(
                    {
                        "op": "batch",
                        "requests": [
                            {"op": "point", "x": 100, "y": 100},
                            {"op": "window", "x1": 0, "y1": 0,
                             "x2": 150, "y2": 150},
                        ],
                    }
                )
            )
            traces = TRACER.recent()
        finally:
            TRACER.disable()
        batch_traces = [t for t in traces if t["name"] == "batch"]
        assert len(batch_traces) == 1  # members nested, not separate traces
        member_names = sorted(s["name"] for s in batch_traces[0]["spans"])
        assert member_names == ["point", "window"]

    def test_slow_query_log_via_engine(self):
        engine = QueryEngine(
            build_index("R*", lattice_map(n=6)),
            registry=MetricsRegistry(),
            slow_ms=0.0,  # everything is slow
        )
        engine.point(50, 50)
        entries = engine.slow_log.entries()
        assert entries and entries[0]["op"] == "point"
        assert engine.registry.counter("repro_slow_queries_total").value >= 1
        assert engine.stats()["obs"]["slow_queries"]["recorded"] >= 1

    def test_concurrent_tracing_keeps_counters_consistent(self):
        """K threads tracing concurrently: counters stay attributable and
        the per-op histogram totals equal the queries issued."""
        engine = QueryEngine(
            build_index("R*", lattice_map(n=8)), registry=MetricsRegistry()
        )
        threads_n, per_thread = 4, 25
        TRACER.enable()
        errors = []

        def worker(tag):
            session = engine.session(f"worker-{tag}")
            try:
                for i in range(per_thread):
                    engine.point(
                        100 * (1 + (i + tag) % 8),
                        100 * (1 + (i * 3 + tag) % 8),
                        session=session,
                        use_cache=False,
                    )
            except Exception as exc:  # surfaced below
                errors.append(exc)

        try:
            workers = [
                threading.Thread(target=worker, args=(t,))
                for t in range(threads_n)
            ]
            for w in workers:
                w.start()
            for w in workers:
                w.join()
        finally:
            TRACER.disable()
        assert errors == []
        assert engine.counters_consistent()
        issued = threads_n * per_thread
        hist = engine.registry.histogram("repro_op_latency_seconds", op="point")
        assert hist.raw()[1] == issued
        assert engine.registry.counter(
            "repro_queries_total", op="point", status="ok"
        ).value == issued
        assert engine.registry.counter("repro_traces_total").value == issued
