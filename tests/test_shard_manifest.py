"""Tests for the shard-map manifest: partitioning, routing, persistence."""

import json
import os

import pytest

from repro.core.pmr.locational import hilbert_index, hilbert_point
from repro.geometry import Rect, Segment
from repro.shard import ShardMap, ShardSpec, cell_weights, segment_mbr


def make_map(n_shards=4, order=3, world_size=1024.0, **kwargs):
    return ShardMap.partition(
        n_shards, order=order, world_size=world_size, **kwargs
    )


class TestPartition:
    def test_ranges_tile_the_curve(self):
        smap = make_map(4, order=3)
        total = 4**3
        assert smap.shards[0].lo == 0
        assert smap.shards[-1].hi == total
        for a, b in zip(smap.shards, smap.shards[1:]):
            assert a.hi == b.lo

    def test_equal_partition_is_balanced(self):
        smap = make_map(4, order=3)
        sizes = [s.hi - s.lo for s in smap.shards]
        assert max(sizes) - min(sizes) <= 1

    def test_weighted_partition_moves_cuts(self):
        order = 2
        total = 4**order
        # All the weight in the first quarter of the curve: the first
        # shard's range must shrink toward it.
        weights = [10.0] * (total // 4) + [0.0] * (total - total // 4)
        smap = ShardMap.partition(2, order=order, weights=weights)
        equal = ShardMap.partition(2, order=order)
        assert smap.shards[0].hi < equal.shards[0].hi

    def test_shard_count_validation(self):
        with pytest.raises(ValueError):
            ShardMap.partition(0, order=2)
        with pytest.raises(ValueError):
            ShardMap.partition(4**2 + 1, order=2)

    def test_weights_length_validation(self):
        with pytest.raises(ValueError):
            ShardMap.partition(2, order=2, weights=[1.0, 2.0])

    def test_rejects_non_contiguous_tiling(self):
        total = 4**2
        with pytest.raises(ValueError):
            ShardMap(
                [ShardSpec("a", 0, 4), ShardSpec("b", 5, total)], order=2
            )
        with pytest.raises(ValueError):
            ShardMap([ShardSpec("a", 0, total - 1)], order=2)

    def test_rejects_duplicate_ids(self):
        total = 4**2
        with pytest.raises(ValueError):
            ShardMap(
                [ShardSpec("a", 0, 4), ShardSpec("a", 4, total)], order=2
            )


class TestSplit:
    def test_children_tile_the_parent(self):
        smap = make_map(3, order=3)
        parent = smap.shards[1]
        child_map = smap.split(parent.shard_id)
        a = child_map.shard(f"{parent.shard_id}a")
        b = child_map.shard(f"{parent.shard_id}b")
        assert (a.lo, b.hi) == (parent.lo, parent.hi)
        assert a.hi == b.lo
        assert child_map.epoch == smap.epoch + 1

    def test_weighted_split_balances_children(self):
        smap = make_map(1, order=2)
        total = 4**2
        # Weight piled onto the first two cells: the cut stays early.
        weights = [100.0, 100.0] + [0.0] * (total - 2)
        child_map = smap.split("s0", weights=weights)
        assert child_map.shard("s0a").hi <= 2

    def test_single_cell_shard_refuses(self):
        smap = ShardMap(
            [ShardSpec("a", 0, 1), ShardSpec("b", 1, 4)], order=1
        )
        with pytest.raises(ValueError):
            smap.split("a")

    def test_unknown_shard_raises(self):
        with pytest.raises(KeyError):
            make_map(2).split("nope")


class TestRouting:
    def test_extents_cover_the_world(self):
        smap = make_map(4, order=3, world_size=1024.0)
        union = Rect.union_of([smap.extent(s) for s in smap.shards])
        assert union.xmin == 0.0 and union.ymin == 0.0
        assert union.xmax == 1024.0 and union.ymax == 1024.0

    def test_every_point_routes_somewhere(self):
        smap = make_map(4, order=3, world_size=1024.0)
        for x, y in [(0.0, 0.0), (512.0, 512.0), (1023.9, 1023.9)]:
            assert smap.route_point(x, y)

    def test_boundary_rect_routes_to_both_neighbors(self):
        smap = make_map(2, order=3, world_size=1024.0)
        s0, s1 = smap.shards
        e0, e1 = smap.extent(s0), smap.extent(s1)
        # A rect spanning both extents must be covered by both shards.
        xs = ((e0.xmin + e0.xmax) / 2, (e1.xmin + e1.xmax) / 2)
        ys = ((e0.ymin + e0.ymax) / 2, (e1.ymin + e1.ymax) / 2)
        rect = Rect(min(xs), min(ys), max(xs), max(ys))
        assert smap.covers(s0, rect) and smap.covers(s1, rect)

    def test_out_of_world_rect_is_clipped_not_lost(self):
        smap = make_map(2, order=2, world_size=1024.0)
        rect = Rect(-50.0, -50.0, 2000.0, 2000.0)
        routed = smap.route_rect(rect)
        assert {s.shard_id for s in routed} == {
            s.shard_id for s in smap.shards
        }

    def test_index_filter_matches_covers(self):
        smap = make_map(3, order=3, world_size=1024.0)
        spec = smap.shards[0]
        pred = smap.index_filter(spec.shard_id)
        seg = Segment(1.0, 1.0, 5.0, 5.0)
        assert pred(0, seg) == smap.covers(spec, segment_mbr(seg))


class TestPersistence:
    def test_save_load_roundtrip(self, tmp_path):
        root = str(tmp_path)
        smap = make_map(4, order=3, world_size=2048.0)
        smap.save(root)
        loaded = ShardMap.load(root)
        assert loaded.to_dict() == smap.to_dict()
        assert loaded.epoch == smap.epoch
        assert [s.to_dict() for s in loaded.shards] == [
            s.to_dict() for s in smap.shards
        ]

    def test_save_leaves_no_temp_file(self, tmp_path):
        root = str(tmp_path)
        make_map(2).save(root)
        names = os.listdir(root)
        assert names == [os.path.basename(ShardMap.path(root))]

    def test_load_missing_raises(self, tmp_path):
        with pytest.raises(FileNotFoundError):
            ShardMap.load(str(tmp_path))

    def test_load_corrupt_raises(self, tmp_path):
        root = str(tmp_path)
        with open(ShardMap.path(root), "w", encoding="utf-8") as fh:
            fh.write("{not json")
        with pytest.raises(json.JSONDecodeError):
            ShardMap.load(root)


class TestCellWeights:
    def test_weights_cover_the_grid(self):
        segs = [Segment(1.0, 1.0, 5.0, 5.0), Segment(900.0, 900.0, 910.0, 910.0)]
        weights = cell_weights(segs, 3, 1024.0)
        assert len(weights) == 4**3
        assert all(w >= 0 for w in weights)
        assert sum(weights) >= len(segs)

    def test_straddling_segment_weights_both_cells(self):
        order, world = 1, 1024.0
        seg = Segment(200.0, 200.0, 800.0, 800.0)
        weights = cell_weights([seg], order, world)
        assert sum(1 for w in weights if w > 0) >= 2


class TestHilbertPointRoundtrip:
    def test_inverse_of_hilbert_index(self):
        for order in (1, 2, 3, 4):
            n = 1 << order
            for x in range(n):
                for y in range(n):
                    assert hilbert_point(order, hilbert_index(order, x, y)) == (
                        x,
                        y,
                    )

    def test_out_of_range_raises(self):
        with pytest.raises(ValueError):
            hilbert_point(2, 16)
        with pytest.raises(ValueError):
            hilbert_point(2, -1)
