"""Smoke tests: every example script must run end to end.

Examples are documentation; these tests keep them from rotting. Each
runs in-process via runpy (stdout captured by pytest) on its built-in
small scale.
"""

import runpy
import sys
from pathlib import Path

import pytest

EXAMPLES = sorted(
    p.name for p in (Path(__file__).parent.parent / "examples").glob("*.py")
)


@pytest.mark.parametrize("script", EXAMPLES)
def test_example_runs(script, monkeypatch, capsys):
    path = Path(__file__).parent.parent / "examples" / script
    monkeypatch.setattr(sys, "argv", [str(path)])
    runpy.run_path(str(path), run_name="__main__")
    out = capsys.readouterr().out
    assert out.strip(), f"{script} printed nothing"


def test_example_inventory():
    """The README's example table must stay in sync with reality."""
    assert set(EXAMPLES) == {
        "quickstart.py",
        "index_shootout.py",
        "map_server.py",
        "road_maintenance.py",
        "map_viewer.py",
        "map_overlay.py",
        "decomposition_gallery.py",
        "tiger_import.py",
    }
    readme = (Path(__file__).parent.parent / "README.md").read_text()
    for script in EXAMPLES:
        assert script in readme, f"{script} missing from README"
