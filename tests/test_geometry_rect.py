"""Unit and property tests for Rect."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.geometry import Point, Rect

coords = st.integers(min_value=0, max_value=16383)


def rects():
    return st.builds(
        lambda x1, y1, x2, y2: Rect(min(x1, x2), min(y1, y2), max(x1, x2), max(y1, y2)),
        coords,
        coords,
        coords,
        coords,
    )


class TestConstruction:
    def test_from_points_orders_corners(self):
        r = Rect.from_points(Point(5, 1), Point(2, 9))
        assert r == Rect(2, 1, 5, 9)

    def test_from_points_degenerate(self):
        r = Rect.from_points(Point(3, 3), Point(3, 3))
        assert r == Rect(3, 3, 3, 3)
        assert r.area() == 0
        assert r.is_valid

    def test_union_of_single(self):
        r = Rect(1, 2, 3, 4)
        assert Rect.union_of([r]) == r

    def test_union_of_many(self):
        r = Rect.union_of([Rect(0, 0, 1, 1), Rect(5, 5, 6, 6), Rect(2, -1, 3, 0)])
        assert r == Rect(0, -1, 6, 6)

    def test_union_of_empty_raises(self):
        with pytest.raises(ValueError):
            Rect.union_of([])


class TestScalars:
    def test_area_perimeter(self):
        r = Rect(0, 0, 4, 3)
        assert r.area() == 12
        assert r.perimeter() == 14
        assert r.width == 4
        assert r.height == 3

    def test_center(self):
        assert Rect(0, 0, 4, 2).center() == Point(2, 1)


class TestPredicates:
    def test_contains_point_boundary(self):
        r = Rect(0, 0, 10, 10)
        assert r.contains_point(Point(0, 0))
        assert r.contains_point(Point(10, 10))
        assert r.contains_point(Point(5, 10))
        assert not r.contains_point(Point(10.001, 5))

    def test_contains_rect(self):
        outer = Rect(0, 0, 10, 10)
        assert outer.contains_rect(Rect(2, 2, 8, 8))
        assert outer.contains_rect(outer)
        assert not outer.contains_rect(Rect(2, 2, 11, 8))

    def test_intersects_touching_edge(self):
        assert Rect(0, 0, 5, 5).intersects(Rect(5, 0, 10, 5))

    def test_intersects_touching_corner(self):
        assert Rect(0, 0, 5, 5).intersects(Rect(5, 5, 10, 10))

    def test_disjoint(self):
        assert not Rect(0, 0, 5, 5).intersects(Rect(6, 6, 10, 10))


class TestCombinators:
    def test_merged(self):
        assert Rect(0, 0, 2, 2).merged(Rect(5, 5, 6, 6)) == Rect(0, 0, 6, 6)

    def test_intersection_none_when_disjoint(self):
        assert Rect(0, 0, 1, 1).intersection(Rect(2, 2, 3, 3)) is None

    def test_intersection_degenerate_touch(self):
        r = Rect(0, 0, 5, 5).intersection(Rect(5, 0, 10, 5))
        assert r == Rect(5, 0, 5, 5)
        assert r.area() == 0

    def test_overlap_area(self):
        assert Rect(0, 0, 4, 4).overlap_area(Rect(2, 2, 6, 6)) == 4
        assert Rect(0, 0, 4, 4).overlap_area(Rect(4, 4, 6, 6)) == 0

    def test_enlargement_zero_when_contained(self):
        assert Rect(0, 0, 10, 10).enlargement(Rect(1, 1, 2, 2)) == 0

    def test_enlargement_positive(self):
        assert Rect(0, 0, 2, 2).enlargement(Rect(2, 0, 4, 2)) == 4

    def test_expanded_to_point(self):
        assert Rect(0, 0, 2, 2).expanded_to_point(Point(5, -1)) == Rect(0, -1, 5, 2)


class TestProperties:
    @given(rects(), rects())
    def test_merged_contains_both(self, a, b):
        m = a.merged(b)
        assert m.contains_rect(a)
        assert m.contains_rect(b)

    @given(rects(), rects())
    def test_merged_commutes(self, a, b):
        assert a.merged(b) == b.merged(a)

    @given(rects(), rects())
    def test_intersection_symmetry_and_consistency(self, a, b):
        inter = a.intersection(b)
        assert (inter is not None) == a.intersects(b)
        assert inter == b.intersection(a)
        if inter is not None:
            assert a.contains_rect(inter)
            assert b.contains_rect(inter)

    @given(rects(), rects())
    def test_overlap_area_matches_intersection(self, a, b):
        inter = a.intersection(b)
        expected = inter.area() if inter is not None else 0.0
        assert a.overlap_area(b) == expected

    @given(rects(), rects())
    def test_enlargement_nonnegative(self, a, b):
        assert a.enlargement(b) >= 0

    @given(rects())
    def test_union_of_idempotent(self, a):
        assert Rect.union_of([a, a, a]) == a
