"""Latch hardening: no exception path may leak the underlying lock.

Two regressions guarded here:

* an exception out of the contended blocking acquire (e.g. an interrupt
  between the non-blocking probe and the blocking wait) must leave the
  bookkeeping untouched and the latch fully usable;
* an exception out of the statistics update *after* the lock was
  obtained must back the acquisition out completely — holder cleared,
  depth zero, underlying lock released.
"""

from __future__ import annotations

import threading

import pytest

from repro.storage.latch import Latch


class FlakyLock:
    """RLock stand-in: always 'contended', blocking acquire can be armed
    to raise (simulating an interrupt landing in the slow path)."""

    def __init__(self) -> None:
        self._inner = threading.RLock()
        self.fail_next_blocking = False

    def acquire(self, blocking: bool = True) -> bool:
        if not blocking:
            return False  # force the contended slow path
        if self.fail_next_blocking:
            self.fail_next_blocking = False
            raise KeyboardInterrupt
        return self._inner.acquire()

    def release(self) -> None:
        self._inner.release()


class ExplodingStatsLatch(Latch):
    """Latch whose statistics update fails on demand."""

    def __init__(self) -> None:
        super().__init__("exploding")
        self.explode = False

    def _record_acquire(self, contended: bool) -> None:
        if self.explode:
            raise RuntimeError("stats bookkeeping failure")
        super()._record_acquire(contended)


def _acquirable_from_other_thread(lock) -> bool:
    """Can a second thread take ``lock``? (Same-thread probes lie for RLock.)"""
    result = []

    def probe() -> None:
        got = lock.acquire(blocking=False)
        result.append(got)
        if got:
            lock.release()

    thread = threading.Thread(target=probe)
    thread.start()
    thread.join()
    return result[0]


def test_interrupt_in_contended_acquire_leaves_latch_usable():
    latch = Latch("flaky")
    latch._lock = FlakyLock()
    latch._lock.fail_next_blocking = True

    with pytest.raises(KeyboardInterrupt):
        latch.acquire()

    assert latch._holder is None
    assert latch._depth == 0
    assert latch.acquisitions == 0
    assert latch.contended == 0

    # the latch recovers: the same thread can take and release it
    with latch:
        assert latch._depth == 1
    assert latch.acquisitions == 1
    assert latch.contended == 1  # FlakyLock always reports contention
    assert _acquirable_from_other_thread(latch._lock._inner)


def test_stats_failure_after_lock_obtained_backs_out_completely():
    latch = ExplodingStatsLatch()
    latch.explode = True

    with pytest.raises(RuntimeError):
        latch.acquire()

    assert latch._holder is None
    assert latch._depth == 0
    assert latch.acquisitions == 0
    # the underlying lock must NOT still be held by the failed acquire
    assert _acquirable_from_other_thread(latch._lock)

    latch.explode = False
    with latch:
        pass
    assert latch.acquisitions == 1
    assert _acquirable_from_other_thread(latch._lock)


def test_exception_inside_with_block_releases():
    latch = Latch()
    with pytest.raises(ValueError):
        with latch:
            raise ValueError("boom")
    assert latch._holder is None
    assert _acquirable_from_other_thread(latch._lock)


def test_reentrant_acquire_counts_once():
    latch = Latch()
    with latch:
        with latch:
            assert latch._depth == 2
        assert latch._depth == 1
    assert latch.acquisitions == 1
    assert latch._holder is None


def test_release_by_non_holder_raises():
    latch = Latch("guarded")
    with pytest.raises(RuntimeError):
        latch.release()

    errors = []
    latch.acquire()

    def foreign_release() -> None:
        try:
            latch.release()
        except RuntimeError as exc:
            errors.append(exc)

    thread = threading.Thread(target=foreign_release)
    thread.start()
    thread.join()
    latch.release()
    assert len(errors) == 1


def test_contended_acquisition_is_counted():
    latch = Latch("contended")
    started = threading.Event()
    release = threading.Event()

    def holder() -> None:
        with latch:
            started.set()
            release.wait(timeout=5)

    thread = threading.Thread(target=holder)
    thread.start()
    started.wait(timeout=5)

    waiter_done = threading.Event()

    def waiter() -> None:
        with latch:
            pass
        waiter_done.set()

    w = threading.Thread(target=waiter)
    w.start()
    release.set()
    thread.join()
    w.join()
    assert waiter_done.is_set()
    assert latch.acquisitions == 2
    assert latch.contended >= 0  # timing-dependent; never negative
