"""Tests for segment-to-segment nearest-neighbour search."""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.queries import iter_nearest, nearest_segment_to_segment
from repro.geometry import Point, Segment
from repro.geometry.distance import segment_segment_distance2

from tests.conftest import ALL_STRUCTURES, build_index, random_planar_segments

coords = st.integers(min_value=0, max_value=500)


class TestSegmentSegmentDistance:
    def test_crossing_is_zero(self):
        assert segment_segment_distance2(
            Point(0, 0), Point(10, 10), Point(0, 10), Point(10, 0)
        ) == 0

    def test_shared_endpoint_is_zero(self):
        assert segment_segment_distance2(
            Point(0, 0), Point(5, 5), Point(5, 5), Point(9, 0)
        ) == 0

    def test_parallel(self):
        assert segment_segment_distance2(
            Point(0, 0), Point(10, 0), Point(0, 4), Point(10, 4)
        ) == 16

    def test_endpoint_to_interior(self):
        assert segment_segment_distance2(
            Point(0, 0), Point(10, 0), Point(5, 3), Point(5, 9)
        ) == 9

    @given(coords, coords, coords, coords, coords, coords, coords, coords)
    def test_symmetric(self, a, b, c, d, e, f, g, h):
        p1, p2, q1, q2 = Point(a, b), Point(c, d), Point(e, f), Point(g, h)
        assert segment_segment_distance2(p1, p2, q1, q2) == pytest.approx(
            segment_segment_distance2(q1, q2, p1, p2)
        )

    @given(coords, coords, coords, coords, coords, coords, coords, coords)
    def test_matches_sampling(self, a, b, c, d, e, f, g, h):
        p1, p2, q1, q2 = Point(a, b), Point(c, d), Point(e, f), Point(g, h)
        d2 = segment_segment_distance2(p1, p2, q1, q2)
        # Sample both segments; true distance can't exceed any sample pair.
        best = min(
            (p1.x + s / 20 * (p2.x - p1.x) - (q1.x + t / 20 * (q2.x - q1.x))) ** 2
            + (p1.y + s / 20 * (p2.y - p1.y) - (q1.y + t / 20 * (q2.y - q1.y))) ** 2
            for s in range(21)
            for t in range(21)
        )
        assert d2 <= best + 1e-6


class TestNearestSegmentToSegment:
    def oracle(self, segments, query, exclude=None):
        best = None
        for i, s in enumerate(segments):
            if i == exclude:
                continue
            d = segment_segment_distance2(query.start, query.end, s.start, s.end)
            if best is None or d < best[1]:
                best = (i, d)
        return best

    def test_matches_oracle_all_structures(self, any_structure):
        rng = random.Random(101)
        segs = random_planar_segments(rng)
        idx = build_index(any_structure, segs)
        for _ in range(10):
            q = Segment(
                rng.randint(0, 1000), rng.randint(0, 1000),
                rng.randint(0, 1000), rng.randint(0, 1000),
            )
            got = nearest_segment_to_segment(idx, q)
            want = self.oracle(segs, q)
            assert got[1] == pytest.approx(want[1]), (q, got, want)

    def test_exclude_self(self):
        segs = [Segment(0, 0, 100, 0), Segment(0, 50, 100, 50)]
        idx = build_index("R*", segs)
        got = nearest_segment_to_segment(idx, segs[0], exclude=0)
        assert got[0] == 1
        assert got[1] == pytest.approx(2500)

    def test_stored_segment_queries_itself_at_zero(self):
        segs = [Segment(0, 0, 100, 0), Segment(0, 50, 100, 50)]
        idx = build_index("PMR", segs)
        got = nearest_segment_to_segment(idx, segs[0])
        assert got == (0, 0.0)

    def test_iter_nearest_with_segment_sorted(self):
        rng = random.Random(102)
        segs = random_planar_segments(rng, n_cells=4)
        idx = build_index("R+", segs)
        q = Segment(10, 10, 60, 80)
        results = list(iter_nearest(idx, q))
        dists = [d for _, d in results]
        assert dists == sorted(dists)
        assert len(results) == len(segs)
