"""Tests for complete face extraction (polygonization)."""

import random

import pytest

from repro.data import generate_county
from repro.data.faces import extract_faces
from repro.geometry import Point, Segment

from tests.conftest import lattice_map, random_planar_segments


class TestSmallGraphs:
    def test_single_square(self):
        segs = [
            Segment(0, 0, 10, 0),
            Segment(10, 0, 10, 10),
            Segment(10, 10, 0, 10),
            Segment(0, 10, 0, 0),
        ]
        fs = extract_faces(segs)
        assert len(fs.faces) == 2  # inner + outer
        inner = fs.inner_faces()
        assert len(inner) == 1
        assert inner[0].size == 4
        assert inner[0].area() == pytest.approx(100)
        assert fs.euler_consistent()

    def test_single_edge(self):
        fs = extract_faces([Segment(0, 0, 10, 0)])
        # One face: out and back along the bridge.
        assert len(fs.faces) == 1
        assert fs.faces[0].size == 2
        assert fs.faces[0].is_outer
        assert fs.euler_consistent()

    def test_two_components(self):
        segs = [
            # Square 1
            Segment(0, 0, 10, 0), Segment(10, 0, 10, 10),
            Segment(10, 10, 0, 10), Segment(0, 10, 0, 0),
            # A far-away bridge edge
            Segment(100, 100, 120, 100),
        ]
        fs = extract_faces(segs)
        assert fs.components == 2
        assert fs.euler_consistent()
        assert len(fs.inner_faces()) == 1

    def test_square_with_dangling_stub(self):
        segs = [
            Segment(0, 0, 10, 0),
            Segment(10, 0, 10, 10),
            Segment(10, 10, 0, 10),
            Segment(0, 10, 0, 0),
            Segment(10, 10, 15, 15),  # stub outward
        ]
        fs = extract_faces(segs)
        assert fs.euler_consistent()
        inner = fs.inner_faces()
        assert len(inner) == 1 and inner[0].size == 4
        outer = [f for f in fs.faces if f.is_outer]
        assert len(outer) == 1
        assert outer[0].seg_ids.count(4) == 2  # stub walked both ways

    def test_grid_lattice_counts(self):
        n = 5
        segs = lattice_map(n=n, pitch=100)
        fs = extract_faces(segs)
        assert fs.euler_consistent()
        assert len(fs.inner_faces()) == (n - 1) ** 2
        assert all(f.size == 4 for f in fs.inner_faces())

    def test_degenerate_segments_ignored(self):
        segs = [Segment(0, 0, 10, 0), Segment(5, 5, 5, 5)]
        fs = extract_faces(segs)
        assert fs.edges == 1
        assert fs.euler_consistent()

    def test_empty(self):
        fs = extract_faces([])
        assert fs.faces == []
        assert fs.euler_consistent()  # 0 == 0


class TestEulerOnRandomMaps:
    @pytest.mark.parametrize("seed", range(8))
    def test_euler_formula(self, seed):
        rng = random.Random(seed * 977)
        segs = random_planar_segments(rng, n_cells=6)
        fs = extract_faces(segs)
        assert fs.euler_consistent(), (
            fs.vertices, fs.edges, fs.components, len(fs.faces)
        )

    def test_every_half_edge_in_exactly_one_face(self):
        rng = random.Random(4242)
        segs = random_planar_segments(rng, n_cells=5)
        fs = extract_faces(segs)
        total_half_edges = sum(f.size for f in fs.faces)
        assert total_half_edges == 2 * fs.edges


class TestOnCounties:
    def test_county_polygonization(self):
        m = generate_county("baltimore", scale=0.02)
        fs = extract_faces(m.segments)
        assert fs.euler_consistent()
        assert fs.average_inner_size() > 3

    def test_matches_sampled_survey_direction(self):
        """The exact face inventory must agree with the sampled survey:
        urban blocks are far smaller than rural polygons."""
        urban = extract_faces(generate_county("baltimore", scale=0.02).segments)
        rural = extract_faces(generate_county("charles", scale=0.02).segments)
        assert rural.average_inner_size() > urban.average_inner_size()

    def test_agrees_with_enclosing_polygon_query(self):
        """Query 4's face must appear in the exhaustive inventory."""
        from repro.core.queries import enclosing_polygon
        from tests.conftest import build_index

        segs = lattice_map(n=5, pitch=120)
        fs = extract_faces(segs)
        idx = build_index("R*", segs)
        r = enclosing_polygon(idx, Point(350, 290))
        keys = {frozenset(f.seg_ids) for f in fs.faces}
        assert frozenset(r.seg_ids) in keys
