"""Tests for the true R+-tree (content MBRs inside disjoint partitions)."""

import random

import pytest

from repro.core import RPlusTree, TrueRPlusTree
from repro.core.queries import nearest_segment, segments_at_point, window_query
from repro.geometry import Point, Rect, Segment
from repro.storage import StorageContext

from tests.conftest import (
    TEST_WORLD,
    lattice_map,
    oracle_at_point,
    oracle_in_window,
    oracle_nearest_dist2,
    random_planar_segments,
)

WORLD = Rect(0, 0, TEST_WORLD, TEST_WORLD)


def build(cls, segments, capacity=None):
    ctx = StorageContext.create()
    idx = cls(ctx, world=WORLD, capacity=capacity)
    for sid in ctx.load_segments(segments):
        idx.insert(sid)
    return idx


class TestCorrectness:
    def test_queries_match_oracle(self):
        rng = random.Random(41)
        segs = random_planar_segments(rng)
        idx = build(TrueRPlusTree, segs, capacity=6)
        idx.check_invariants()
        for s in segs[:15]:
            got = set(segments_at_point(idx, s.start))
            assert got == set(oracle_at_point(segs, s.start))
        w = Rect(120, 180, 700, 660)
        assert set(window_query(idx, w)) == set(oracle_in_window(segs, w))
        p = Point(444, 333)
        assert nearest_segment(idx, p)[1] == pytest.approx(
            oracle_nearest_dist2(segs, p)
        )

    def test_same_pages_as_hybrid(self):
        """The true R+ stores the same number of tuples/pages (Section 3:
        k-d-B and R+ storage costs are the same)."""
        segs = lattice_map(n=10, pitch=90)
        hybrid = build(RPlusTree, segs, capacity=10)
        true_rp = build(TrueRPlusTree, segs, capacity=10)
        assert true_rp.page_count() == hybrid.page_count()
        assert true_rp.entry_count() == hybrid.entry_count()

    def test_delete_stays_correct_with_loose_mbrs(self):
        segs = lattice_map(n=6, pitch=110)
        ctx = StorageContext.create()
        idx = TrueRPlusTree(ctx, world=WORLD, capacity=8)
        ids = ctx.load_segments(segs)
        for sid in ids:
            idx.insert(sid)
        for sid in ids[::3]:
            idx.delete(sid)
        idx.check_invariants()  # MBRs may be loose, never wrong
        alive = [sid for i, sid in enumerate(ids) if i % 3 != 0]
        got = set(idx.candidate_ids_in_rect(Rect(0, 0, TEST_WORLD, TEST_WORLD)))
        assert got == set(alive)


class TestDeadSpacePruning:
    def _clustered_map(self):
        """Two far-apart clusters: partitions cover the void between
        them, content MBRs do not."""
        a = [Segment(50 + i * 6, 50, 53 + i * 6, 60) for i in range(25)]
        b = [Segment(900 + i * 4, 900, 902 + i * 4, 910) for i in range(25)]
        return a + b

    def test_point_query_fails_earlier_on_dead_space(self):
        """Paper: point searches fail earlier in the true R+ than in the
        k-d-B-style variants because dead space is minimized."""
        segs = self._clustered_map()
        hybrid = build(RPlusTree, segs, capacity=8)
        true_rp = build(TrueRPlusTree, segs, capacity=8)

        dead = Point(512, 512)  # the void between the clusters
        b0 = hybrid.ctx.counters.bbox_comps
        hybrid.candidate_ids_at_point(dead)
        hybrid_cost = hybrid.ctx.counters.bbox_comps - b0

        b0 = true_rp.ctx.counters.bbox_comps
        true_rp.candidate_ids_at_point(dead)
        true_cost = true_rp.ctx.counters.bbox_comps - b0

        assert true_cost <= hybrid_cost

    def test_window_in_dead_space_prunes_fully(self):
        segs = self._clustered_map()
        true_rp = build(TrueRPlusTree, segs, capacity=8)
        got = true_rp.candidate_ids_in_rect(Rect(400, 400, 600, 600))
        assert got == []

    def test_nn_skips_empty_subtrees(self):
        segs = self._clustered_map()
        true_rp = build(TrueRPlusTree, segs, capacity=8)
        p = Point(100, 100)
        sid, d2 = nearest_segment(true_rp, p)
        assert d2 == pytest.approx(oracle_nearest_dist2(segs, p))

    def test_build_charges_more_bbox_work(self):
        """Paper: the true R+ builds slower (MBR maintenance)."""
        segs = lattice_map(n=8, pitch=110)
        hybrid = build(RPlusTree, segs)
        true_rp = build(TrueRPlusTree, segs)
        assert (
            true_rp.ctx.counters.bbox_comps > hybrid.ctx.counters.bbox_comps
        )


class TestPropertyBased:
    def test_random_maps(self):
        for seed in range(6):
            rng = random.Random(seed * 131)
            segs = random_planar_segments(rng, n_cells=5)
            idx = build(TrueRPlusTree, segs, capacity=6)
            idx.check_invariants()
            w = Rect(100, 100, 700, 700)
            assert set(window_query(idx, w)) == set(oracle_in_window(segs, w))
